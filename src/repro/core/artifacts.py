"""Trained-model artifacts: the bridge from training to the benches.

Tables 1/3 and Figs. 8/9 need a *fine-tuned* EdgeBERT model per task
(learned spans, pruned weights, calibrated off-ramps). Training takes
minutes per task even at tiny scale, so artifacts are built once and
cached on disk (``.artifacts/`` by default, override with
``REPRO_ARTIFACT_DIR``); every bench and integration test loads the cache.

An artifact bundles the trained student, the measured sparsities/spans,
the per-layer entropies/logits over held-out data (for threshold
calibration and the EE predictor), and the evaluation labels.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace as _replace

import numpy as np

from repro.autograd import default_dtype
from repro.config import (
    GLUE_TASKS,
    ModelConfig,
    PruningConfig,
    TASK_NUM_LABELS,
    TrainConfig,
)
from repro.data import build_vocab, make_task_data
from repro.earlyexit import collect_layer_outputs
from repro.errors import ArtifactError
from repro.model import AlbertModel
from repro.pruning import measured_embedding_density, measured_encoder_sparsity
from repro.quant import quantize_model_for_eval
from repro.training import EdgeBertTrainer, evaluate_accuracy, train_teacher
from repro.training.span_calibration import calibrate_spans
from repro.utils.serialization import load_arrays, save_arrays

#: Per-task encoder sparsity targets (paper Table 3).
TASK_ENCODER_SPARSITY = {"mnli": 0.50, "qqp": 0.80, "sst2": 0.50, "qnli": 0.60}

#: Schema version — bump to invalidate stale caches.
_VERSION = 3


@dataclass(frozen=True)
class ArtifactConfig:
    """Scale and recipe of the trained tiny-EdgeBERT artifacts."""

    seq_len: int = 48
    num_layers: int = 12
    hidden_size: int = 96
    num_heads: int = 12
    ffn_size: int = 384
    embedding_size: int = 48
    train_size: int = 768
    eval_size: int = 320
    teacher_steps: int = 550
    steps_phase1: int = 600
    steps_phase2: int = 250
    adapt_steps: int = 120  # post-calibration backbone adaptation
    span_loss_budget: float = 0.08  # relative loss budget for spans
    calibration_size: int = 128  # examples used by span calibration
    batch_size: int = 8
    learning_rate: float = 5e-4
    seed: int = 0
    quantize: bool = True

    def model_config(self, task):
        vocab = build_vocab()
        return ModelConfig(
            vocab_size=len(vocab),
            embedding_size=self.embedding_size,
            hidden_size=self.hidden_size,
            num_layers=self.num_layers,
            num_heads=self.num_heads,
            ffn_size=self.ffn_size,
            max_seq_len=self.seq_len,
            num_labels=TASK_NUM_LABELS[task],
        )

    def train_config(self, task):
        return TrainConfig(
            steps_phase1=self.steps_phase1,
            steps_phase2=self.steps_phase2,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            seed=self.seed,
            # Spans are calibrated by loss sensitivity after phase 1 (see
            # repro.training.span_calibration), not by gradient penalty.
            span_loss_coeff=0.0,
            pruning=PruningConfig(
                embedding_sparsity=0.60,
                encoder_sparsity=TASK_ENCODER_SPARSITY[task],
            ),
        )

    @classmethod
    def quick(cls):
        """Fast low-fidelity recipe for tests (seconds, 4 layers)."""
        return cls(seq_len=32, num_layers=4, train_size=192, eval_size=96,
                   teacher_steps=60, steps_phase1=80, steps_phase2=40,
                   adapt_steps=30, calibration_size=64)


#: Per-task recipe adjustments. QQP's relational objective needs a longer
#: teacher run at 12 layers; SST-2's student is seed-sensitive at this
#: depth (the default seed diverges during adaptation).
TASK_RECIPE_OVERRIDES = {
    "qqp": {"teacher_steps": 900, "seed": 2, "span_loss_budget": 0.05},
    # SST-2's 12-layer student is fragile to aggressive span removal; a
    # tight budget keeps its long-range head alive, and skipping the
    # adaptation pass avoids post-calibration divergence.
    "sst2": {"seed": 4, "span_loss_budget": 0.015, "adapt_steps": 0},
}


def default_config_for(task):
    """The default artifact recipe for ``task`` (with overrides)."""
    return ArtifactConfig(**TASK_RECIPE_OVERRIDES.get(task, {}))


@dataclass
class TaskArtifact:
    """A trained EdgeBERT model plus its evaluation-time measurements."""

    task: str
    model: AlbertModel
    model_config: ModelConfig
    teacher_accuracy: float
    baseline_accuracy: float  # final off-ramp, after compression
    spans: np.ndarray
    encoder_sparsity: float
    embedding_density: float
    train_entropies: np.ndarray  # (L, N_train)
    eval_entropies: np.ndarray  # (L, N_eval)
    eval_logits: np.ndarray  # (L, N_eval, C)
    eval_labels: np.ndarray

    @property
    def average_span(self):
        return float(np.mean(self.spans))

    @property
    def active_heads(self):
        return int((self.spans > 0).sum())


def artifact_dir():
    """Cache directory (created on demand)."""
    root = os.environ.get("REPRO_ARTIFACT_DIR")
    if root is None:
        here = os.path.dirname(os.path.abspath(__file__))
        root = os.path.join(here, "..", "..", "..", ".artifacts")
    root = os.path.abspath(root)
    os.makedirs(root, exist_ok=True)
    return root


def _cache_path(task, config):
    tag = (f"{task}_L{config.num_layers}H{config.hidden_size}"
           f"S{config.seq_len}T{config.train_size}"
           f"p{config.steps_phase1}-{config.steps_phase2}"
           f"seed{config.seed}v{_VERSION}")
    return os.path.join(artifact_dir(), tag)


def train_task_artifact(task, config=None):
    """Train one task's EdgeBERT model from scratch (no cache)."""
    if task not in GLUE_TASKS:
        raise ArtifactError(f"unknown task {task!r}")
    config = config or default_config_for(task)
    with default_dtype("float32"):
        model_config = config.model_config(task)
        train, eval_split = make_task_data(
            task, train_size=config.train_size, eval_size=config.eval_size,
            seed=config.seed, max_seq_len=config.seq_len)

        # The teacher is a plain task-tuned ALBERT: no adaptive span (its
        # attention stays fully open), no pruning, no off-ramp training.
        teacher_config = _replace(model_config, use_adaptive_span=False)
        teacher = AlbertModel(teacher_config, seed=config.seed + 1)
        train_teacher(teacher, train, steps=config.teacher_steps,
                      batch_size=config.batch_size,
                      lr=config.learning_rate, seed=config.seed)
        teacher_accuracy = evaluate_accuracy(teacher, eval_split)

        student = AlbertModel(model_config, seed=config.seed)
        span = student.shared_encoder.attention.span
        # Train with fully-open spans; calibration decides reach afterward.
        span.z.data[:] = config.seq_len + span.ramp
        trainer = EdgeBertTrainer(student, config.train_config(task),
                                  teacher=teacher)
        trainer.train_phase1(train)
        calibration = train.subset(np.arange(min(config.calibration_size,
                                                 len(train))))
        calibrate_spans(student, calibration,
                        loss_budget=config.span_loss_budget)
        span.z.requires_grad = False
        if config.adapt_steps:
            trainer.train_adaptation(train, config.adapt_steps)
        trainer.train_phase2(train)
        if config.quantize:
            quantize_model_for_eval(student)
        student.eval()

        train_logits, train_entropies = collect_layer_outputs(student, train)
        eval_logits, eval_entropies = collect_layer_outputs(student,
                                                            eval_split)
        del train_logits
        return TaskArtifact(
            task=task,
            model=student,
            model_config=model_config,
            teacher_accuracy=float(teacher_accuracy),
            baseline_accuracy=float(
                (eval_logits[-1].argmax(-1) == eval_split.labels).mean()),
            spans=student.attention_spans(),
            encoder_sparsity=float(measured_encoder_sparsity(student)),
            embedding_density=float(measured_embedding_density(student)),
            train_entropies=train_entropies,
            eval_entropies=eval_entropies,
            eval_logits=eval_logits,
            eval_labels=eval_split.labels.copy(),
        )


def _save_artifact(path, artifact, config):
    arrays = {f"param::{k}": v for k, v in artifact.model.state_dict().items()}
    arrays.update({
        "spans": artifact.spans,
        "train_entropies": artifact.train_entropies,
        "eval_entropies": artifact.eval_entropies,
        "eval_logits": artifact.eval_logits,
        "eval_labels": artifact.eval_labels,
    })
    metadata = {
        "task": artifact.task,
        "teacher_accuracy": artifact.teacher_accuracy,
        "baseline_accuracy": artifact.baseline_accuracy,
        "encoder_sparsity": artifact.encoder_sparsity,
        "embedding_density": artifact.embedding_density,
        "version": _VERSION,
    }
    save_arrays(path, arrays, metadata)


def _load_artifact(path, task, config):
    arrays, metadata = load_arrays(path)
    if metadata.get("version") != _VERSION or metadata.get("task") != task:
        raise ArtifactError(f"stale artifact cache at {path}")
    model_config = config.model_config(task)
    model = AlbertModel(model_config, seed=config.seed)
    state = {k[len("param::"):]: v for k, v in arrays.items()
             if k.startswith("param::")}
    model.load_state_dict(state)
    model.eval()
    return TaskArtifact(
        task=task,
        model=model,
        model_config=model_config,
        teacher_accuracy=metadata["teacher_accuracy"],
        baseline_accuracy=metadata["baseline_accuracy"],
        spans=arrays["spans"],
        encoder_sparsity=metadata["encoder_sparsity"],
        embedding_density=metadata["embedding_density"],
        train_entropies=arrays["train_entropies"],
        eval_entropies=arrays["eval_entropies"],
        eval_logits=arrays["eval_logits"],
        eval_labels=arrays["eval_labels"].astype(np.int64),
    )


def load_task_artifact(task, config=None, force_rebuild=False):
    """Load a cached artifact, training (and caching) it if missing."""
    config = config or default_config_for(task)
    path = _cache_path(task, config)
    if not force_rebuild and os.path.exists(path + ".npz"):
        try:
            return _load_artifact(path, task, config)
        except (ArtifactError, KeyError, ValueError):
            pass  # fall through to rebuild
    artifact = train_task_artifact(task, config)
    _save_artifact(path, artifact, config)
    return artifact


def load_all_artifacts(config=None, tasks=GLUE_TASKS, force_rebuild=False):
    """Artifacts for every evaluated task (builds missing ones)."""
    return {task: load_task_artifact(task, config=config,
                                     force_rebuild=force_rebuild)
            for task in tasks}
