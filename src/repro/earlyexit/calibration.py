"""Entropy-threshold calibration (paper Sec. 5.1, Table 3).

The paper fixes an accuracy-degradation budget (1 %, 2 % or 5 % relative
to the full 12-layer model) and *raises the entropy threshold until the
accuracy drops to the budget* — separately for the conventional early-exit
policy and for the predictor-bounded latency-aware policy (which needs a
lower threshold because LUT errors force conservative prediction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.earlyexit.algorithms import (
    conventional_early_exit,
    conventional_inference,
    latency_aware_inference,
)
from repro.earlyexit.entropy import max_entropy
from repro.earlyexit.predictor import (
    ExitPredictorLUT,
    train_exit_predictor,
    true_exit_layers,
)


@dataclass
class CalibrationResult:
    """One Table-3 row fragment for a policy at one accuracy budget."""

    threshold: float
    accuracy: float
    average_exit_layer: float
    average_predicted_layer: float | None = None


def default_threshold_grid(num_labels, count=60):
    """Candidate entropy thresholds spanning (0, ln C]."""
    return np.linspace(0.01, max_entropy(num_labels), count)


def calibrate_conventional(logits, entropies, labels, max_drop_pct,
                           thresholds=None):
    """Largest threshold keeping accuracy within ``max_drop_pct`` %.

    Returns a :class:`CalibrationResult`; the baseline is the full-model
    (final off-ramp) accuracy, matching the paper's definition.
    """
    labels = np.asarray(labels)
    baseline = conventional_inference(logits).accuracy(labels)
    floor = baseline * (1.0 - max_drop_pct / 100.0)
    if thresholds is None:
        thresholds = default_threshold_grid(logits.shape[-1])
    best = CalibrationResult(threshold=0.0, accuracy=baseline,
                             average_exit_layer=float(logits.shape[0]))
    for threshold in np.sort(thresholds):
        outcome = conventional_early_exit(logits, entropies, threshold)
        accuracy = outcome.accuracy(labels)
        if accuracy >= floor:
            best = CalibrationResult(
                threshold=float(threshold),
                accuracy=accuracy,
                average_exit_layer=outcome.average_exit_layer,
            )
        else:
            break
    return best


def calibrate_latency_aware(logits, entropies, labels, max_drop_pct, lut,
                            thresholds=None):
    """Same sweep for the predictor-bounded (Algorithm 2) policy."""
    labels = np.asarray(labels)
    baseline = conventional_inference(logits).accuracy(labels)
    floor = baseline * (1.0 - max_drop_pct / 100.0)
    if thresholds is None:
        thresholds = default_threshold_grid(logits.shape[-1])
    best = CalibrationResult(threshold=0.0, accuracy=baseline,
                             average_exit_layer=float(logits.shape[0]),
                             average_predicted_layer=float(logits.shape[0]))
    for threshold in np.sort(thresholds):
        outcome = latency_aware_inference(logits, entropies, threshold, lut)
        accuracy = outcome.accuracy(labels)
        if accuracy >= floor:
            best = CalibrationResult(
                threshold=float(threshold),
                accuracy=accuracy,
                average_exit_layer=outcome.average_exit_layer,
                average_predicted_layer=outcome.average_predicted_layer,
            )
        else:
            break
    return best


def build_lut_for_threshold(train_entropies, threshold, num_labels,
                            use_mlp=True, margin=0, seed=0, num_bins=64,
                            mlp_epochs=150):
    """Train the EE predictor for one threshold and distill it to a LUT.

    ``train_entropies`` is (L, N) from a *training* split; the paper builds
    parallel train/test entropy datasets the same way.
    """
    num_layers = train_entropies.shape[0]
    exits = true_exit_layers(train_entropies, threshold)
    layer1 = train_entropies[0]
    if use_mlp:
        mlp = train_exit_predictor(layer1, exits, epochs=mlp_epochs, seed=seed)
        return ExitPredictorLUT.distill(mlp, num_labels, num_layers,
                                        num_bins=num_bins, margin=margin)
    return ExitPredictorLUT.from_samples(layer1, exits, num_labels,
                                         num_layers, num_bins=num_bins,
                                         margin=margin)
