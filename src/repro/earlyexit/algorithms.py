"""Reference implementations of the paper's inference algorithms.

* :func:`conventional_inference` — the 12-layer baseline (no exits).
* :func:`conventional_early_exit` — Algorithm 1: check entropy after every
  encoder layer, exit below threshold.
* :func:`latency_aware_inference` — Algorithm 2: after layer 1, either exit
  immediately or ask the EE-predictor LUT for the exit layer; continue
  checking entropy up to the predicted layer and *force* termination there
  so the latency bound always holds.

These run on batched per-layer logits so threshold calibration is a pure
array operation; the streaming per-sentence engine that also models
hardware time/energy lives in :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autograd import no_grad
from repro.earlyexit.entropy import entropy_from_logits
from repro.earlyexit.predictor import true_exit_layers


@dataclass
class ExitOutcome:
    """Vectorized result of an early-exit policy over a dataset."""

    exit_layers: np.ndarray  # (N,) 1-based layer each sentence exited at
    predictions: np.ndarray  # (N,) argmax class at the exit layer
    predicted_layers: np.ndarray | None = None  # (N,) LUT predictions (Alg. 2)

    @property
    def average_exit_layer(self):
        return float(self.exit_layers.mean())

    def accuracy(self, labels):
        return float((self.predictions == np.asarray(labels)).mean())

    @property
    def average_predicted_layer(self):
        if self.predicted_layers is None:
            return None
        return float(self.predicted_layers.mean())


def collect_layer_outputs(model, dataset, batch_size=64):
    """All off-ramp logits and entropies for a dataset.

    Returns ``(logits, entropies)`` shaped (L, N, C) and (L, N). One full
    forward pass per batch — the exit policies are then simulated
    vectorially on top.
    """
    all_logits = None
    with no_grad():
        for start in range(0, len(dataset), batch_size):
            stop = min(start + batch_size, len(dataset))
            sub = dataset.subset(np.arange(start, stop))
            layer_logits = model(sub.input_ids, sub.token_type_ids,
                                 sub.attention_mask)
            stacked = np.stack([l.data for l in layer_logits])  # (L, b, C)
            if all_logits is None:
                all_logits = [stacked]
            else:
                all_logits.append(stacked)
    logits = np.concatenate(all_logits, axis=1)
    return logits, entropy_from_logits(logits)


def predictions_at(logits, exit_layers):
    """Argmax class of each sentence at its (1-based) exit layer."""
    n = logits.shape[1]
    return logits[exit_layers - 1, np.arange(n)].argmax(axis=-1)


def conventional_inference(logits):
    """Baseline: every sentence runs all layers (paper Fig. 1a)."""
    num_layers, n = logits.shape[0], logits.shape[1]
    exits = np.full(n, num_layers, dtype=np.int64)
    return ExitOutcome(exit_layers=exits,
                       predictions=predictions_at(logits, exits))


def conventional_early_exit(logits, entropies, threshold):
    """Algorithm 1: exit at the first layer with entropy < threshold."""
    exits = true_exit_layers(entropies, threshold)
    return ExitOutcome(exit_layers=exits,
                       predictions=predictions_at(logits, exits))


def bounded_exit_layers(entropies, threshold, predicted_layers):
    """Algorithm 2's exit rule, vectorized over sentences.

    ``min(first-layer-below-threshold, predicted cap)`` per column of
    ``entropies`` — the cap is where termination is forced, preserving
    the timing guarantee. Sentences that never cross the threshold
    before their cap exit exactly at the cap. Callers that treat layer-1
    exits specially (the engine prices them at nominal V/F) mask them
    separately; here a layer-1 crossing simply yields 1.
    """
    first = true_exit_layers(entropies, threshold)
    return np.minimum(first, np.asarray(predicted_layers))


def latency_aware_inference(logits, entropies, threshold, lut):
    """Algorithm 2 (vectorized): predictor-bounded early exit.

    Sentences whose layer-1 entropy clears the threshold exit at layer 1;
    the rest exit at ``min(first-layer-below-threshold, LUT prediction)``
    — the LUT prediction is a *hard* bound (timing guarantee), even if the
    entropy never crossed the threshold.
    """
    num_layers = entropies.shape[0]
    predicted = lut.predict(entropies[0]).astype(np.int64)
    predicted = np.clip(predicted, 1, num_layers)
    exits = bounded_exit_layers(entropies, threshold, predicted)
    # Layer-1 immediate exits keep exit layer 1 regardless of prediction.
    exits[entropies[0] < threshold] = 1
    return ExitOutcome(
        exit_layers=exits,
        predictions=predictions_at(logits, exits),
        predicted_layers=predicted,
    )
