"""Numerically-stable entropy of classifier logits (paper Eq. 1 / Eq. 3).

The early-exit decision compares the entropy of an off-ramp's output
distribution against the threshold E_T. The paper's hardware computes the
max-shifted form (Eq. 3) to avoid exponential overflow and division by
tiny sums; this module is that reference implementation, shared by the
software algorithms and the SFU model.

With x̃ = x − max(x):

    H(x) = ln Σ e^{x̃_k}  −  ( Σ x̃_k e^{x̃_k} ) / ( Σ e^{x̃_k} )

which equals −Σ p ln p for p = softmax(x), in nats.
"""

from __future__ import annotations

import numpy as np


def entropy_from_logits(logits):
    """Entropy (nats) of softmax(logits) along the last axis.

    Stable for arbitrarily large logit magnitudes; returns an array with
    the last axis reduced.
    """
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    z = exp.sum(axis=-1)
    weighted = (shifted * exp).sum(axis=-1)
    return np.log(z) - weighted / z


def entropy_naive(logits):
    """Textbook −Σ p log p (Eq. 1, no max shift) — for tests/benches.

    Overflows for large logits; kept as the reference the stable form is
    validated against and as the "what the hardware avoids" baseline.
    """
    logits = np.asarray(logits, dtype=np.float64)
    exp = np.exp(logits)
    probs = exp / exp.sum(axis=-1, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(probs > 0, probs * np.log(probs), 0.0)
    return -terms.sum(axis=-1)


def max_entropy(num_labels):
    """Upper bound ln(C) — the entropy of a uniform distribution."""
    return float(np.log(num_labels))


def normalized_entropy(logits):
    """Entropy rescaled to [0, 1] by ln(C) (threshold-friendly)."""
    logits = np.asarray(logits)
    return entropy_from_logits(logits) / max_entropy(logits.shape[-1])
