"""The early-exit predictor (paper Sec. 5.1).

A ReLU-activated five-layer perceptron (64 cells per hidden layer) maps
the entropy measured after encoder layer 1 to the layer at which the
entropy-threshold exit would fire. Knowing the exit layer after layer 1 is
what enables sentence-level DVFS: the remaining work is bounded, so the
voltage/frequency can be dropped immediately.

The trained MLP is then *distilled into a lookup table* (LUT) indexed by
quantized entropy, which is what the accelerator's SFU actually evaluates
(one LUT read per sentence).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import SGD, Tensor, no_grad, relu
from repro.earlyexit.entropy import max_entropy
from repro.errors import ConfigError
from repro.model.modules import Linear, Module
from repro.utils.rng import new_rng


class ExitPredictorMLP(Module):
    """1 → 64 → 64 → 64 → 64 → 1 regression network (five weight layers).

    Inputs/targets are standardized internally (entropy is O(0.1–0.7)
    while exit layers are O(1–12); training on raw scales diverges).
    """

    def __init__(self, hidden=64, depth=5, seed=0):
        super().__init__()
        if depth < 2:
            raise ConfigError("predictor needs at least input+output layers")
        rng = new_rng(seed)
        widths = [1] + [hidden] * (depth - 1) + [1]
        self.layers = [
            Linear(widths[i], widths[i + 1], rng, std=np.sqrt(2.0 / widths[i]),
                   name=f"mlp.{i}")
            for i in range(depth)
        ]
        self.input_scale = 1.0
        self.output_scale = 1.0

    def forward(self, x):
        out = x
        for layer in self.layers[:-1]:
            out = relu(layer(out))
        return self.layers[-1](out)

    def predict(self, entropies):
        """Predict exit layers for an array of layer-1 entropies."""
        entropies = np.asarray(entropies, dtype=np.float64).reshape(-1, 1)
        with no_grad():
            out = self.forward(Tensor(entropies / self.input_scale)).data
        return out.reshape(-1) * self.output_scale


def true_exit_layers(entropies, threshold, num_layers=None):
    """First layer whose entropy is below ``threshold`` (1-based).

    ``entropies`` is (num_layers, N); sentences that never cross the
    threshold exit at the last layer (Algorithm 1's fallthrough).
    """
    entropies = np.asarray(entropies)
    num_layers = num_layers or entropies.shape[0]
    below = entropies < threshold
    first = np.argmax(below, axis=0) + 1
    never = ~below.any(axis=0)
    first[never] = num_layers
    return first


def train_exit_predictor(layer1_entropy, exit_layers, hidden=64, depth=5,
                         epochs=200, lr=0.01, seed=0):
    """Fit the MLP on (entropy@layer1 → exit layer) pairs.

    Matches the paper's setup: the network is searched/trained to minimize
    the difference between predicted and true entropy-based exit layer.
    Returns the trained :class:`ExitPredictorMLP`.
    """
    x = np.asarray(layer1_entropy, dtype=np.float64).reshape(-1, 1)
    y = np.asarray(exit_layers, dtype=np.float64).reshape(-1, 1)
    if x.shape[0] != y.shape[0] or x.shape[0] == 0:
        raise ConfigError("predictor needs matching, non-empty training data")
    model = ExitPredictorMLP(hidden=hidden, depth=depth, seed=seed)
    model.input_scale = max(float(np.max(x)), 1e-6)
    model.output_scale = max(float(np.max(y)), 1.0)
    optimizer = SGD([p for p in model.parameters() if p.requires_grad],
                    lr=lr, momentum=0.9)
    inputs = Tensor(x / model.input_scale)
    targets = Tensor(y / model.output_scale)
    for _ in range(epochs):
        optimizer.zero_grad()
        pred = model(inputs)
        loss = ((pred - targets) ** 2).mean()
        loss.backward()
        optimizer.step()
    return model


class ExitPredictorLUT:
    """LUT distillation of the exit predictor (paper Sec. 5.1 / 7.4.2).

    The entropy axis is quantized into uniform bins over [0, ln C]; each
    bin stores a (conservatively rounded-up) exit layer. ``margin`` adds
    extra conservatism: predicting too high wastes a little energy,
    predicting too low forces a premature exit and costs accuracy.
    """

    def __init__(self, bin_edges, layers, num_layers):
        self.bin_edges = np.asarray(bin_edges, dtype=np.float64)
        self.layers = np.asarray(layers, dtype=np.int64)
        self.num_layers = int(num_layers)
        if self.layers.size != self.bin_edges.size - 1:
            raise ConfigError("LUT needs exactly one entry per bin")

    @classmethod
    def distill(cls, mlp, num_labels, num_layers, num_bins=64, margin=0):
        """Tabulate the MLP at bin centers."""
        top = max_entropy(num_labels)
        edges = np.linspace(0.0, top, num_bins + 1)
        centers = 0.5 * (edges[:-1] + edges[1:])
        raw = mlp.predict(centers)
        layers = np.clip(np.ceil(raw + margin), 1, num_layers).astype(np.int64)
        # Enforce monotonicity: higher entropy can never exit earlier.
        layers = np.maximum.accumulate(layers)
        return cls(edges, layers, num_layers)

    @classmethod
    def from_samples(cls, layer1_entropy, exit_layers, num_labels, num_layers,
                     num_bins=64, margin=0):
        """Direct empirical LUT (no MLP): per-bin max exit layer.

        Used by tests and as an ablation of the MLP distillation path.
        """
        top = max_entropy(num_labels)
        edges = np.linspace(0.0, top, num_bins + 1)
        x = np.asarray(layer1_entropy)
        y = np.asarray(exit_layers)
        table = np.ones(num_bins, dtype=np.int64)
        bin_idx = np.clip(np.digitize(x, edges) - 1, 0, num_bins - 1)
        for b in range(num_bins):
            hits = y[bin_idx == b]
            if hits.size:
                table[b] = int(hits.max())
        table = np.clip(table + margin, 1, num_layers)
        table = np.maximum.accumulate(table)
        return cls(edges, table, num_layers)

    def predict(self, entropy):
        """Predicted exit layer(s) for entropy value(s)."""
        entropy = np.asarray(entropy, dtype=np.float64)
        idx = np.clip(np.digitize(entropy, self.bin_edges) - 1, 0,
                      self.layers.size - 1)
        return self.layers[idx]

    @property
    def size_bytes(self):
        """Auxiliary-buffer footprint: one byte per bin (layers ≤ 255)."""
        return int(self.layers.size)

    def mean_prediction_error(self, layer1_entropy, exit_layers):
        """Mean |predicted − true| exit-layer error (diagnostic)."""
        pred = self.predict(layer1_entropy)
        return float(np.mean(np.abs(pred - np.asarray(exit_layers))))
