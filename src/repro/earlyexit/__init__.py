"""Entropy-based early exit: entropy, algorithms, predictor, calibration."""

from repro.earlyexit.algorithms import (
    ExitOutcome,
    bounded_exit_layers,
    collect_layer_outputs,
    conventional_early_exit,
    conventional_inference,
    latency_aware_inference,
    predictions_at,
)
from repro.earlyexit.calibration import (
    CalibrationResult,
    build_lut_for_threshold,
    calibrate_conventional,
    calibrate_latency_aware,
    default_threshold_grid,
)
from repro.earlyexit.entropy import (
    entropy_from_logits,
    entropy_naive,
    max_entropy,
    normalized_entropy,
)
from repro.earlyexit.predictor import (
    ExitPredictorLUT,
    ExitPredictorMLP,
    train_exit_predictor,
    true_exit_layers,
)

__all__ = [
    "ExitOutcome",
    "bounded_exit_layers",
    "collect_layer_outputs",
    "conventional_early_exit",
    "conventional_inference",
    "latency_aware_inference",
    "predictions_at",
    "CalibrationResult",
    "build_lut_for_threshold",
    "calibrate_conventional",
    "calibrate_latency_aware",
    "default_threshold_grid",
    "entropy_from_logits",
    "entropy_naive",
    "max_entropy",
    "normalized_entropy",
    "ExitPredictorLUT",
    "ExitPredictorMLP",
    "train_exit_predictor",
    "true_exit_layers",
]
