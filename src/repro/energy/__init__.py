"""Energy as a first-class cluster signal (the EdgeBERT north star).

The cluster simulator of :mod:`repro.cluster` optimized latency and
swap count, tallying energy after the fact. This subsystem makes energy
*actionable*:

* :class:`DeviceEnergyModel` — per-accelerator DVFS ledger: the parked
  (vdd, freq) operating point, idle leakage between batches, and wake
  transition costs (LDO slew ∥ ADPLL relock dead time);
* :class:`EnergyGovernor` — a scheduling policy scoring candidate
  (batch, device) pairs by predicted joules under a deadline-
  feasibility constraint, so relaxed-SLO traffic flows to cheap/parked
  devices and tight-SLO ``lai`` traffic to big ones (heterogeneous
  pools via per-accelerator ``HwConfig`` → per-device pricing tables);
* :class:`EnergyBudget` — a cluster-wide joules/sec cap over a rolling
  window that throttles admission Camel-style while exhausted;
* :class:`EnergyReport` / :class:`DeviceEnergyBreakdown` — where every
  millijoule went (compute / swap / idle / transition per device,
  energy per request by SLO class, budget accounting), reconciling with
  the serving aggregates to 1e-9.

``python -m repro.energy --smoke`` runs the self-checking gate: on a
4-device heterogeneous pool the governor must serve the reference
mixed-SLO workload with less total energy than FIFO at no worse an SLO
violation count, budget throttling must kick in and recover, and every
breakdown must sum exactly.
"""

from repro.energy.budget import BudgetStats, EnergyBudget
from repro.energy.device import DeviceEnergyModel
from repro.energy.report import DeviceEnergyBreakdown, EnergyReport
from repro.energy.governor import EnergyGovernor

__all__ = [
    "BudgetStats",
    "DeviceEnergyBreakdown",
    "DeviceEnergyModel",
    "EnergyBudget",
    "EnergyGovernor",
    "EnergyReport",
]
