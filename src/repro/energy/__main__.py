"""Energy smoke target: ``python -m repro.energy --smoke``.

One command that exercises the whole energy subsystem — heterogeneous
per-device pricing, the parked-point device ledgers, the
:class:`~repro.energy.EnergyGovernor` placement policy, and the
rolling-window energy budget — with self-checks:

* **accounting** — every per-accelerator breakdown sums to the cluster
  total within 1e-9, and the compute/swap columns reconcile with the
  serving-layer aggregates within 1e-9;
* **the headline claim** — on the reference mixed-SLO workload over a
  4-device heterogeneous pool, the governor serves the same trace with
  *less total energy* (compute + swap + idle + transition) than FIFO
  at no more SLO violations;
* **budget throttling** — a tight joules/sec cap must actually throttle
  (stall events, longer makespan) and recover (every request still
  served);
* **determinism** — the governor replays bit-for-bit.

Exits non-zero on any regression; the cheap CI gate for the energy
stack, mirroring ``python -m repro.serving`` and ``repro.cluster``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.cluster import ClusterSimulator
from repro.config import GLUE_TASKS, HwConfig
from repro.errors import EnergyError, ReproError
from repro.serving import synthetic_registry, synthetic_traffic

#: The reference heterogeneous pool: one big device for tight SLOs, two
#: energy-optimal n=16 devices, one small low-power device.
REFERENCE_POOL = (32, 16, 16, 8)


def reference_pool():
    """Per-accelerator ``HwConfig``s of the reference pool."""
    return tuple(HwConfig(mac_vector_size=n) for n in REFERENCE_POOL)


def reference_workload(num_requests=400, n_sentences=64, seed=0):
    """Registry + mixed-SLO mixed-criticality trace for the gates."""
    registry = synthetic_registry(GLUE_TASKS, n=n_sentences, seed=seed)
    trace = synthetic_traffic(registry, num_requests, seed=seed,
                              mean_interarrival_ms=1.0,
                              modes=("base", "lai"))
    return registry, trace


def _check(condition, message):
    # Explicit check (not assert): the smoke gate must still gate under
    # ``python -O``, which strips assert statements.
    if not condition:
        raise EnergyError(f"smoke check failed: {message}")


def _check_energy_accounting(report):
    energy = report.energy
    total = energy.total_mj
    by_column = (energy.compute_mj + energy.swap_mj + energy.idle_mj
                 + energy.transition_mj)
    _check(abs(total - by_column) <= 1e-9,
           "column totals do not sum to the cluster total")
    by_device = sum(d.total_mj for d in energy.devices)
    _check(abs(total - by_device) <= 1e-9,
           "per-accelerator breakdowns do not sum to the cluster total")
    for device in energy.devices:
        _check(min(device.compute_mj, device.swap_mj, device.idle_mj,
                   device.transition_mj) >= 0.0,
               f"negative energy column on accelerator {device.accel_id}")
    energy.reconcile(report.serving, tol=1e-9)
    per_class = energy.per_class
    _check(sum(c["requests"] for c in per_class.values())
           == report.num_requests,
           "per-class request counts do not partition the trace")
    _check(all(c["mj_per_request"] > 0 for c in per_class.values()),
           "non-positive per-request energy in a class")


def run_smoke(num_requests=400, n_sentences=64, seed=0, verbose=True):
    """End-to-end energy pass with self-checks; returns the summaries."""
    registry, trace = reference_workload(num_requests, n_sentences, seed)
    pool = reference_pool()

    summaries = {}
    reports = {}
    for policy in ("fifo", "energy"):
        report = ClusterSimulator(registry, policy=policy,
                                  hw_configs=pool).run(trace)
        _check_energy_accounting(report)
        reports[policy] = report
        summaries[policy] = report.summary()

    # The headline claim: the governor spends no more joules than FIFO
    # on the same heterogeneous pool at no more SLO violations.
    fifo, gov = reports["fifo"], reports["energy"]
    _check(gov.energy.total_mj < fifo.energy.total_mj,
           f"governor energy {gov.energy.total_mj:.6f} mJ not below "
           f"fifo {fifo.energy.total_mj:.6f} mJ")
    _check(gov.deadline_violations <= fifo.deadline_violations,
           f"governor SLO violations {gov.deadline_violations} exceed "
           f"fifo {fifo.deadline_violations}")

    # Heterogeneity is real: the per-device profile variants must make
    # the same sentences cost different latency AND energy on the n=32
    # vs n=8 devices — gating the profile_for/with_hw_config plumbing,
    # not just the pool constant.
    task = registry.tasks[0]
    big = registry.profile_for(task, pool[0])
    small = registry.profile_for(task, pool[-1])
    priced = {
        name: profile.engine.simulate_dataset(
            "base", profile.logits[:, :4], profile.entropies[:, :4])
        for name, profile in (("big", big), ("small", small))
    }
    _check(priced["big"].total_latency_ms
           < priced["small"].total_latency_ms - 1e-9,
           "n=32 device does not price faster than n=8")
    _check(abs(priced["big"].total_energy_mj
               - priced["small"].total_energy_mj) > 1e-9,
           "per-device pricing collapsed to identical energy")

    # Budget throttling: cap the cluster at half the governor's average
    # power; the run must stall at least once, stretch the makespan,
    # and still serve every request (recovery).
    avg_power_mw = gov.energy.total_mj / gov.makespan_ms * 1e3
    budget = ClusterSimulator(
        registry, policy="energy", hw_configs=pool,
        energy_budget_mw=avg_power_mw * 0.5,
        budget_window_ms=50.0).run(trace)
    _check_energy_accounting(budget)
    _check(budget.budget is not None, "budget stats missing")
    _check(budget.budget.throttle_events > 0,
           "tight energy budget never throttled admission")
    _check(budget.budget.throttled_ms > 0, "throttle stalls took no time")
    _check(budget.num_requests == len(trace),
           "budgeted run failed to serve the whole trace")
    _check(budget.makespan_ms > gov.makespan_ms,
           "throttling did not stretch the makespan")
    summaries["energy_budgeted"] = budget.summary()

    # A generous budget must be invisible: no stalls, same placements.
    roomy = ClusterSimulator(
        registry, policy="energy", hw_configs=pool,
        energy_budget_mw=avg_power_mw * 50.0).run(trace)
    _check(roomy.budget.throttle_events == 0,
           "a 50x budget still throttled")
    _check(roomy.energy.total_mj == gov.energy.total_mj,
           "a never-binding budget changed the schedule")

    # Determinism: the governor replays bit-for-bit.
    again = ClusterSimulator(registry, policy="energy",
                             hw_configs=pool).run(trace).summary()
    for record in (again, summaries["energy"]):
        record.pop("wall_seconds", None)
    _check(json.dumps(again, sort_keys=True)
           == json.dumps(summaries["energy"], sort_keys=True),
           "governor simulation is not deterministic")

    if verbose:
        print(json.dumps(summaries, indent=2, sort_keys=True))
    return summaries


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.energy",
        description="EdgeBERT energy governor / budget smoke driver")
    parser.add_argument("--smoke", action="store_true",
                        help="run the self-checking energy smoke pass")
    parser.add_argument("--requests", type=int, default=400,
                        help="trace length for the smoke pass")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("nothing to do; pass --smoke")
    try:
        run_smoke(num_requests=args.requests, seed=args.seed,
                  verbose=not args.quiet)
    except (AssertionError, ReproError) as exc:
        print(f"SMOKE FAILED: {exc}", file=sys.stderr)
        return 1
    if not args.quiet:
        print("energy smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
