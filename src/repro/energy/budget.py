"""Cluster-wide rolling-window energy budget (Camel-style admission).

Edge deployments cap the power envelope, not just per-request latency:
Camel (arXiv:2508.09173) schedules LLM inference under an explicit
energy budget and throttles admission when it is exhausted. The
:class:`EnergyBudget` models that as a joules-per-second cap enforced
over a rolling window: every batch the dispatcher admits *commits* its
predicted energy (compute + swap + wake transition) at its start time;
while the committed energy inside the trailing window has reached the
cap, the dispatcher stops placing batches and re-arms at the instant
the oldest commitment slides out of the window.

Semantics chosen for determinism and liveness:

* admission is gated on *exhausted*, not *would-exceed*: a batch is
  admitted whenever the window still has headroom, even if its own
  energy overshoots the cap — otherwise a batch larger than the whole
  window budget could never run. Each such overshoot is counted
  (``overshoots``) as a budget violation.
* preempted work **is refunded**: :meth:`commit` returns a ledger
  token, and :meth:`refund` hands back the never-executed share of a
  commitment the same way the accelerator's swap-refund ledger does —
  the re-queued remainder commits afresh on re-dispatch, so without the
  refund an aborted batch would leave the window overcharged and
  throttle admission spuriously. A commitment that has already slid out
  of the window refunds nothing (that energy no longer gates anyone).

Fleet-level shaping reads the window through :meth:`headroom_mj` /
:meth:`headroom_fraction` — the router's signal for preferring cheaper
sites and deferring relaxed-SLO traffic *before* the hard throttle
engages.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.errors import EnergyError
from repro.telemetry.tracer import NULL_TRACER


@dataclass
class BudgetStats:
    """What the budget did during one run (for the EnergyReport)."""

    power_mw: float
    window_ms: float
    spent_mj: float = 0.0
    admitted: int = 0
    throttle_events: int = 0
    throttled_ms: float = 0.0
    overshoots: int = 0
    refunds: int = 0
    refunded_mj: float = 0.0

    @property
    def cap_mj(self):
        """Energy allowance of one full window (mW * ms = µJ → mJ)."""
        return self.power_mw * self.window_ms * 1e-3

    def summary(self):
        return {
            "power_mw": self.power_mw,
            "window_ms": self.window_ms,
            "cap_mj_per_window": self.cap_mj,
            "spent_mj": self.spent_mj,
            "admitted": self.admitted,
            "throttle_events": self.throttle_events,
            "throttled_ms": self.throttled_ms,
            "overshoots": self.overshoots,
            "refunds": self.refunds,
            "refunded_mj": self.refunded_mj,
        }


class EnergyBudget:
    """Joules/sec cap over a rolling window of committed batch energy."""

    def __init__(self, power_mw, window_ms=100.0):
        if power_mw <= 0:
            raise EnergyError("energy budget power must be positive")
        if window_ms <= 0:
            raise EnergyError("energy budget window must be positive")
        self.power_mw = float(power_mw)
        self.window_ms = float(window_ms)
        self.cap_mj = self.power_mw * self.window_ms * 1e-3
        self._ledger = deque()  # [commit_ms, energy_mj, token], time-ordered
        self._live = {}  # token -> ledger entry still inside the window
        self._next_token = 0
        self._window_mj = 0.0
        self.stats = BudgetStats(power_mw=self.power_mw,
                                 window_ms=self.window_ms)
        # Telemetry: commits/refunds become instants and throttle stalls
        # spans on _track. Their energy rides in args only (category
        # "budget"), so the ledger-reconciled rollup stays unpolluted —
        # a commit is a *prediction*, not burned energy.
        self._tracer = NULL_TRACER
        self._track = "budget"

    def attach_tracer(self, tracer, track):
        """Observe this budget's window on ``track`` (read-only)."""
        self._tracer = tracer
        self._track = track

    def _expire(self, now_ms):
        cutoff = now_ms - self.window_ms
        while self._ledger and self._ledger[0][0] <= cutoff + 1e-12:
            entry = self._ledger.popleft()
            self._window_mj -= entry[1]
            self._live.pop(entry[2], None)
        if not self._ledger:
            self._window_mj = 0.0  # squash float drift at empty window

    def window_spent_mj(self, now_ms):
        """Committed energy inside the trailing window at ``now_ms``."""
        self._expire(now_ms)
        return self._window_mj

    def headroom_mj(self, now_ms):
        """Energy the window can still admit before the hard throttle."""
        return max(0.0, self.cap_mj - self.window_spent_mj(now_ms))

    def headroom_fraction(self, now_ms):
        """Remaining window allowance in [0, 1] — the shaping signal.

        1.0 means the window is empty, 0.0 means admission is stalled;
        routers use intermediate values to *shape* (prefer cheaper
        placements, defer relaxed traffic) before throttling bites.
        """
        return self.headroom_mj(now_ms) / self.cap_mj

    def exhausted(self, now_ms):
        """True while admission must stall (window spend at the cap)."""
        return self.window_spent_mj(now_ms) >= self.cap_mj - 1e-12

    def commit(self, now_ms, energy_mj):
        """Record an admitted batch's predicted energy at ``now_ms``.

        Returns a token identifying the commitment — hand it to
        :meth:`refund` if the batch is later aborted before finishing.
        """
        energy_mj = float(energy_mj)
        if energy_mj < 0:
            raise EnergyError("cannot commit negative energy")
        if self._ledger and now_ms < self._ledger[-1][0] - 1e-9:
            raise EnergyError("budget commits must be time-ordered")
        self._expire(now_ms)
        token = self._next_token
        self._next_token += 1
        entry = [float(now_ms), energy_mj, token]
        self._ledger.append(entry)
        self._live[token] = entry
        self._window_mj += energy_mj
        self.stats.spent_mj += energy_mj
        self.stats.admitted += 1
        if self._window_mj > self.cap_mj + 1e-12:
            self.stats.overshoots += 1
        if self._tracer.enabled:
            self._tracer.instant(
                "commit", "budget", float(now_ms), self._track,
                args={"committed_mj": energy_mj,
                      "window_mj": self._window_mj,
                      "cap_mj": self.cap_mj})
        return token

    def refund(self, now_ms, token, energy_mj):
        """Hand back the unexecuted share of an aborted commitment.

        Mirrors the accelerator's swap-refund ledger: the refund reduces
        the original ledger entry in place (never below zero), so the
        window stops charging for work that will re-commit when the
        preempted remainder re-dispatches. A commitment that already
        expired out of the window is a no-op. Returns the millijoules
        actually refunded.
        """
        energy_mj = float(energy_mj)
        if energy_mj < 0:
            raise EnergyError("cannot refund negative energy")
        self._expire(now_ms)
        entry = self._live.get(token)
        if entry is None or energy_mj == 0.0:
            return 0.0
        amount = min(energy_mj, entry[1])
        entry[1] -= amount
        self._window_mj -= amount
        self.stats.refunds += 1
        self.stats.refunded_mj += amount
        if self._tracer.enabled:
            self._tracer.instant(
                "refund", "budget", float(now_ms), self._track,
                args={"refunded_mj": amount,
                      "window_mj": self._window_mj})
        return amount

    def next_relief_ms(self, now_ms):
        """Earliest instant the window stops being exhausted.

        That is when enough of the oldest commitments slide out of the
        window for spend to drop below the cap — the dispatcher's retry
        timestamp while throttled.
        """
        self._expire(now_ms)
        if not self.exhausted(now_ms):
            return float(now_ms)
        running = self._window_mj
        for commit_ms, energy_mj, _ in self._ledger:
            running -= energy_mj
            if running < self.cap_mj - 1e-12:
                return self._relief_instant(commit_ms)
        # Unreachable: dropping every commitment empties the window.
        return self._relief_instant(self._ledger[-1][0])

    def _relief_instant(self, commit_ms):
        """Smallest float instant at which ``commit_ms`` has expired.

        ``commit_ms + window_ms`` alone is not safe: at large clock
        values ``(commit + window) - window`` can round to below
        ``commit - 1e-12`` (one ulp of the sum exceeds the epsilon past
        ~4000 s of sim time), so the promised relief instant would not
        actually expire the entry and a throttled dispatcher would
        re-arm at the same instant forever. Nudge upward by ulps until
        :meth:`_expire`'s cutoff test accepts the entry — at most a few
        steps, and liveness becomes exact instead of probabilistic.
        """
        relief = commit_ms + self.window_ms
        while relief - self.window_ms < commit_ms - 1e-12:
            relief = math.nextafter(relief, math.inf)
        return relief

    def note_throttle(self, now_ms, until_ms):
        """Record one dispatcher stall for the report."""
        self.stats.throttle_events += 1
        self.stats.throttled_ms += max(0.0, float(until_ms) - float(now_ms))
        if self._tracer.enabled:
            self._tracer.span(
                "throttle", "budget", float(now_ms),
                max(0.0, float(until_ms) - float(now_ms)), self._track,
                args={"window_mj": self._window_mj,
                      "cap_mj": self.cap_mj})
