"""Per-accelerator energy governor state: the device-side DVFS ledger.

The cluster simulator knows *when* a device computes; this model knows
what the device's supply rail is doing the rest of the time. Each
:class:`DeviceEnergyModel` tracks the **parked operating point** — the
(vdd, freq) the last batch left the rail at, starting from the LDO's
standby/retention voltage — and charges the two energy terms the
post-hoc ``swap + compute`` sums of PR 2 ignored:

* **idle/leakage energy** — while the device waits for work it burns
  static power at the parked voltage (V³-scaled leakage of the device's
  own :class:`~repro.hw.accelerator.AcceleratorModel`; compute-time
  leakage is already inside the engine's per-layer energy, so idle
  accrual runs strictly between runs);
* **DVFS transition energy** — waking a parked device back to the
  nominal point (every batch's front end runs at nominal V/F) burns
  dead time at the higher rail: leakage plus ADPLL power over the
  LDO-slew ∥ ADPLL-relock settle window.

The settle window itself (≲ a few hundred ns) is three to four orders
of magnitude below per-sentence latencies, so — like the paper's Fig. 7
argument — it is charged as energy only and never perturbs the event
schedule; a cluster run with energy tracking is event-for-event
identical to one without.

Everything here is deterministic and observable: the
:class:`~repro.energy.EnergyGovernor` reads ``parked_vdd`` and
:meth:`estimate_transition` when scoring placements, and the final
totals flow into the per-accelerator
:class:`~repro.energy.DeviceEnergyBreakdown`.
"""

from __future__ import annotations

from repro.config import HwConfig
from repro.dvfs import DvfsController
from repro.dvfs.vf_table import max_frequency_ghz
from repro.errors import EnergyError
from repro.hw.accelerator import AcceleratorModel
from repro.telemetry.tracer import NULL_TRACER


class DeviceEnergyModel:
    """Parked-operating-point, idle, standby and transition accounting.

    ``standby_timeout_ms`` arms the sleep state: a device idle longer
    than the timeout drops its rail from the parked point to the LDO's
    standby/retention voltage — cheaper leakage from then on, but the
    next wake pays the full standby→nominal transition through the same
    LDO-slew ∥ ADPLL-relock path (and the drop itself is charged as one
    more transition). ``None`` keeps the legacy park-forever behavior.
    The crossing is applied retroactively when the idle interval is
    accrued, so accounting stays deterministic and event-schedule-free.
    """

    def __init__(self, hw_config=None, start_ms=0.0,
                 standby_timeout_ms=None):
        if standby_timeout_ms is not None and standby_timeout_ms < 0:
            raise EnergyError("standby_timeout_ms must be non-negative")
        self.hw_config = hw_config or HwConfig.energy_optimal()
        self.accelerator = AcceleratorModel(self.hw_config)
        self.dvfs = DvfsController(self.hw_config.dvfs)
        self.nominal_vdd, self.nominal_freq_ghz = \
            self.dvfs.table.nominal_point()
        # The retention point: standby voltage, and the fastest clock
        # that voltage sustains. Devices power up parked there.
        self.standby_vdd = self.dvfs.ldo.standby_voltage
        self.standby_freq_ghz = max_frequency_ghz(self.standby_vdd,
                                                  self.hw_config.dvfs)
        self.parked_vdd = self.standby_vdd
        self.parked_freq_ghz = self.standby_freq_ghz
        self.standby_timeout_ms = (None if standby_timeout_ms is None
                                   else float(standby_timeout_ms))
        self._idle_since_ms = float(start_ms)
        self._busy = False
        self._finalized_ms = None
        # Transition memo: (from_vdd, from_freq, to_vdd, to_freq) →
        # (settle_ms, energy_mj). The rail moves between a handful of
        # operating points but is priced at every run begin/park of a
        # replay; the memo returns the identical floats either way.
        self._transition_cache = {}

        # Telemetry: idle spans and transition instants land on _track;
        # emission reuses the exact floats added to the ledgers below,
        # so a traced run's span rollup reconciles at 1e-9 by identity.
        # Rows buffer locally (_trows) and drain in one bulk pass at
        # finalization — the rail hooks sit on the replay hot path, and
        # Tracer.extend_rows is an order of magnitude cheaper per row
        # than span()/instant() calls.
        self._tracer = NULL_TRACER
        self._track = "device"
        self._trows = []

        self.idle_energy_mj = 0.0
        self.idle_ms = 0.0
        self.standby_ms = 0.0
        self.standby_entries = 0
        self.transition_energy_mj = 0.0
        self.transition_ms = 0.0
        self.transitions = 0

    def attach_tracer(self, tracer, track):
        """Observe this device's rail on ``track`` (strictly read-only).

        Idle intervals become ``"idle"`` spans and every rail move
        (wake, standby drop, forced park) a ``"transition"`` instant,
        each carrying the identical millijoules the ledger accrued — the
        telemetry rollup and :class:`~repro.energy.DeviceEnergyBreakdown`
        agree float-for-float.
        """
        self._tracer = tracer
        self._track = track

    # -- power laws ---------------------------------------------------------------

    def idle_power_mw(self, vdd=None):
        """Static power while parked (clock-gated: leakage only)."""
        return self.accelerator.leakage_mw(
            self.parked_vdd if vdd is None else vdd)

    def would_be_standby(self, now_ms):
        """Has an idle device crossed its standby timeout by ``now_ms``?"""
        return (self.standby_timeout_ms is not None
                and not self._busy
                and self.parked_vdd != self.standby_vdd
                and float(now_ms) - self._idle_since_ms
                > self.standby_timeout_ms)

    def estimate_transition(self, to_vdd=None, to_freq_ghz=None,
                            now_ms=None):
        """(settle_ms, energy_mj) of moving the parked rail to a point.

        Defaults to the nominal point — the move every batch start pays.
        The settle window is dead time at the *higher* of the two rails
        (the LDO header charges before compute resumes) with the ADPLL
        burning its relock power at the target frequency. ``now_ms``,
        when given, accounts for the standby timeout: a device that
        would be asleep by then is priced waking from the retention
        point — the pricier wake the governor weighs against routing to
        an awake device.
        """
        to_vdd = self.nominal_vdd if to_vdd is None else to_vdd
        to_freq = self.nominal_freq_ghz if to_freq_ghz is None \
            else to_freq_ghz
        from_vdd, from_freq = self.parked_vdd, self.parked_freq_ghz
        if now_ms is not None and self.would_be_standby(now_ms):
            from_vdd, from_freq = self.standby_vdd, self.standby_freq_ghz
        key = (from_vdd, from_freq, to_vdd, to_freq)
        cached = self._transition_cache.get(key)
        if cached is None:
            settle_ns = self.dvfs.transition_overhead_ns(
                from_vdd, to_vdd, from_freq, to_freq)
            power_mw = (self.accelerator.leakage_mw(max(from_vdd, to_vdd))
                        + self.dvfs.adpll.power_mw(to_freq))
            cached = (settle_ns * 1e-6, power_mw * settle_ns * 1e-9)
            self._transition_cache[key] = cached  # (ms, mJ)
        return cached

    # -- run lifecycle hooks (driven by AcceleratorSim) ---------------------------

    def on_run_begin(self, now_ms):
        """Close the idle interval and wake the rail to nominal."""
        if self._busy:
            raise EnergyError("device energy model saw begin while busy")
        self._accrue_idle(now_ms)
        settle_ms, energy_mj = self.estimate_transition()
        if settle_ms > 0.0 or energy_mj > 0.0:
            self.transition_ms += settle_ms
            self.transition_energy_mj += energy_mj
            self.transitions += 1
            if self._tracer.enabled:
                self._trows.append(
                    ("wake", "transition", float(now_ms), None,
                     self._track, energy_mj,
                     {"settle_ms": settle_ms,
                      "from_vdd": self.parked_vdd,
                      "to_vdd": self.nominal_vdd}))
        self.parked_vdd = self.nominal_vdd
        self.parked_freq_ghz = self.nominal_freq_ghz
        self._busy = True

    def on_run_end(self, now_ms, vdd=None, freq_ghz=None):
        """Park the rail where the run left it; idle accrual resumes."""
        if not self._busy:
            raise EnergyError("device energy model saw end while idle")
        self.parked_vdd = self.nominal_vdd if vdd is None else float(vdd)
        self.parked_freq_ghz = self.nominal_freq_ghz if freq_ghz is None \
            else float(freq_ghz)
        self._idle_since_ms = float(now_ms)
        self._busy = False

    def force_standby(self, now_ms):
        """Drop an idle device's rail to retention *now* (device parking).

        The fleet autoscaler's hook: parking a whole device should not
        wait for the standby timeout, but it must still pay the real
        DVFS cost — idle leakage at the old parked point up to
        ``now_ms``, then one charged down-transition to the retention
        voltage. The next :meth:`on_run_begin` prices the full
        standby→nominal wake, so a scale-up decision pays its true
        energy bill too. No-op when the rail already sits at retention.
        """
        if self._busy:
            raise EnergyError("cannot force a busy device into standby")
        self._accrue_idle(now_ms)
        if self.parked_vdd == self.standby_vdd:
            return
        settle_ms, energy_mj = self.estimate_transition(
            self.standby_vdd, self.standby_freq_ghz)
        self.transition_ms += settle_ms
        self.transition_energy_mj += energy_mj
        self.transitions += 1
        self.standby_entries += 1
        if self._tracer.enabled:
            self._trows.append(
                ("park", "transition", float(now_ms), None,
                 self._track, energy_mj,
                 {"settle_ms": settle_ms,
                  "from_vdd": self.parked_vdd,
                  "to_vdd": self.standby_vdd}))
        self.parked_vdd = self.standby_vdd
        self.parked_freq_ghz = self.standby_freq_ghz

    def finalize(self, end_ms):
        """Accrue the tail idle interval up to the run's makespan.

        A device whose ledger already advanced past ``end_ms`` (an
        autoscaler parked it at a tick after the last completion) has
        nothing left to accrue — the horizon clamps forward, never
        backwards.
        """
        if self._busy:
            raise EnergyError("cannot finalize a busy device")
        end_ms = max(float(end_ms), self._idle_since_ms)
        self._accrue_idle(end_ms)
        self._finalized_ms = end_ms

    def drain_trace_rows(self):
        """Hand the buffered telemetry rows over and reset the buffer.

        The simulator's finalization bulk-emits these through
        :meth:`~repro.telemetry.Tracer.extend_rows` once the ledgers are
        settled; exporters order by timestamp, so deferred emission is
        invisible downstream.
        """
        rows = self._trows
        self._trows = []
        return rows

    def _accrue_idle(self, now_ms):
        interval_ms = float(now_ms) - self._idle_since_ms
        if interval_ms < -1e-9:
            raise EnergyError(
                f"idle accrual moving backwards: {self._idle_since_ms} ->"
                f" {now_ms} ms")
        interval_ms = max(0.0, interval_ms)
        if self.would_be_standby(now_ms):
            # The rail dropped to retention partway through the interval:
            # leakage at the parked point until the timeout, one charged
            # down-transition at the crossing, standby leakage after.
            awake_ms = min(self.standby_timeout_ms, interval_ms)
            asleep_ms = interval_ms - awake_ms
            awake_mj = self.idle_power_mw() * awake_ms * 1e-3
            self.idle_energy_mj += awake_mj
            settle_ms, energy_mj = self.estimate_transition(
                self.standby_vdd, self.standby_freq_ghz)
            self.transition_ms += settle_ms
            self.transition_energy_mj += energy_mj
            self.transitions += 1
            self.standby_entries += 1
            from_vdd = self.parked_vdd
            self.parked_vdd = self.standby_vdd
            self.parked_freq_ghz = self.standby_freq_ghz
            asleep_mj = (self.idle_power_mw() * asleep_ms
                         * 1e-3)
            self.idle_energy_mj += asleep_mj
            self.standby_ms += asleep_ms
            if self._tracer.enabled:
                crossing_ms = self._idle_since_ms + awake_ms
                self._trows.append(
                    ("idle", "idle", self._idle_since_ms, awake_ms,
                     self._track, awake_mj, None))
                self._trows.append(
                    ("standby-drop", "transition", crossing_ms, None,
                     self._track, energy_mj,
                     {"settle_ms": settle_ms, "from_vdd": from_vdd,
                      "to_vdd": self.standby_vdd}))
                self._trows.append(
                    ("standby", "idle", crossing_ms, asleep_ms,
                     self._track, asleep_mj, None))
        else:
            # mW * ms = µJ; scale to mJ.
            idle_mj = self.idle_power_mw() * interval_ms * 1e-3
            self.idle_energy_mj += idle_mj
            if self._tracer.enabled and interval_ms > 0.0:
                self._trows.append(
                    ("idle", "idle", self._idle_since_ms, interval_ms,
                     self._track, idle_mj, None))
        self.idle_ms += interval_ms
        self._idle_since_ms = float(now_ms)

    @property
    def overhead_energy_mj(self):
        """Idle + transition energy (everything beyond compute/swap)."""
        return self.idle_energy_mj + self.transition_energy_mj
