"""Energy-side reporting for the cluster: where every millijoule went.

An :class:`EnergyReport` is composed into the
:class:`~repro.cluster.ClusterReport` (its ``.energy`` property) and
answers the questions the latency-side report cannot:

* per-accelerator breakdown — compute / swap / idle / transition — one
  :class:`DeviceEnergyBreakdown` per device, summing to the cluster
  total exactly;
* energy per request by (task, SLO class, mode) — the paper's
  energy-per-sentence lens applied to served traffic;
* budget accounting — commitments, throttle stalls and cap overshoots
  when the run enforced a joules/sec cap.

The compute and swap columns are, by construction, the same numbers the
:class:`~repro.serving.ServingReport` aggregates (records + wasted
preemption energy, post-refund swap charges); :meth:`reconcile` asserts
that identity to 1e-9 so the two views can never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import EnergyError


@dataclass(frozen=True)
class DeviceEnergyBreakdown:
    """One accelerator's energy ledger over a cluster run."""

    accel_id: int
    mac_vector_size: int
    compute_mj: float  # served sentences + wasted preempted fractions
    swap_mj: float  # encoder-weight loads, net of mid-swap refunds
    idle_mj: float  # leakage parked between runs
    transition_mj: float  # parked -> nominal wake-ups
    idle_ms: float
    transition_ms: float
    transitions: int
    parked_vdd: float  # where the rail ended the run

    @property
    def total_mj(self):
        return (self.compute_mj + self.swap_mj + self.idle_mj
                + self.transition_mj)

    def as_dict(self):
        return {
            "accel_id": self.accel_id,
            "mac_vector_size": self.mac_vector_size,
            "compute_mj": self.compute_mj,
            "swap_mj": self.swap_mj,
            "idle_mj": self.idle_mj,
            "transition_mj": self.transition_mj,
            "idle_ms": self.idle_ms,
            "transition_ms": self.transition_ms,
            "transitions": self.transitions,
            "parked_vdd": self.parked_vdd,
            "total_mj": self.total_mj,
        }


@dataclass
class EnergyReport:
    """Cluster-wide energy view: devices, SLO classes, budget."""

    devices: list = field(default_factory=list)  # DeviceEnergyBreakdown
    per_class: dict = field(default_factory=dict)
    budget: object = None  # BudgetStats | None

    # -- totals -------------------------------------------------------------------

    @property
    def compute_mj(self):
        return sum(d.compute_mj for d in self.devices)

    @property
    def swap_mj(self):
        return sum(d.swap_mj for d in self.devices)

    @property
    def idle_mj(self):
        return sum(d.idle_mj for d in self.devices)

    @property
    def transition_mj(self):
        return sum(d.transition_mj for d in self.devices)

    @property
    def total_mj(self):
        """Cluster total; equals the per-device totals by construction."""
        return sum(d.total_mj for d in self.devices)

    def device(self, accel_id):
        for d in self.devices:
            if d.accel_id == accel_id:
                return d
        raise EnergyError(f"no energy breakdown for accelerator "
                          f"{accel_id}")

    # -- construction -------------------------------------------------------------

    @classmethod
    def from_cluster(cls, cluster_report):
        """Build from a finished cluster run's records + device ledgers."""
        per_class = {}
        for rec in cluster_report.records:
            request = rec.request
            mode = request.mode if request.mode is not None \
                else cluster_report.mode
            key = f"{request.task}|{request.target_ms:g}ms|{mode}"
            stats = per_class.setdefault(key, {
                "task": request.task, "target_ms": request.target_ms,
                "mode": mode, "requests": 0, "energy_mj": 0.0})
            stats["requests"] += 1
            stats["energy_mj"] += rec.result.energy_mj
        for stats in per_class.values():
            stats["mj_per_request"] = (stats["energy_mj"]
                                       / stats["requests"])
        return cls(devices=list(cluster_report.device_energy),
                   per_class=per_class,
                   budget=cluster_report.budget)

    # -- consistency --------------------------------------------------------------

    def reconcile(self, serving_report, tol=1e-9):
        """Assert the energy ledger matches the serving aggregates.

        ``compute_mj`` must equal the serving report's compute energy
        (served sentences + wasted preemption fractions) and ``swap_mj``
        its post-refund switch energy, both within ``tol``; raises
        :class:`~repro.errors.EnergyError` otherwise.
        """
        compute_gap = abs(self.compute_mj
                          - serving_report.compute_energy_mj)
        swap_gap = abs(self.swap_mj - serving_report.switch_energy_mj)
        if compute_gap > tol or swap_gap > tol:
            raise EnergyError(
                "energy report diverges from serving aggregates: "
                f"compute gap {compute_gap:.3e} mJ, swap gap "
                f"{swap_gap:.3e} mJ (tol {tol:g})")
        return True

    def summary(self):
        """JSON-friendly aggregate view."""
        return {
            "total_mj": self.total_mj,
            "compute_mj": self.compute_mj,
            "swap_mj": self.swap_mj,
            "idle_mj": self.idle_mj,
            "transition_mj": self.transition_mj,
            "devices": [d.as_dict() for d in self.devices],
            "per_class": {k: dict(v)
                          for k, v in sorted(self.per_class.items())},
            "budget": None if self.budget is None
            else self.budget.summary(),
        }
