"""Energy-aware placement: joules-scored, deadline-feasible dispatch.

The built-in cluster policies optimize latency (FIFO/EDF) or swap count
(affinity); :class:`EnergyGovernor` optimizes what EdgeBERT actually
minimizes — energy under a latency constraint — at the *cluster* level.
For the most urgent pending batch it scores every free device by the
joules the placement would really cost there:

    predicted compute energy on that device's hardware (per-device
    pricing tables — a heterogeneous pool prices the same batch
    differently per device)
  + the encoder-weight swap if the device's resident task differs
  + the DVFS wake transition from the device's parked voltage

and places on the cheapest device that is still deadline-feasible:
the batch's deadline belongs to its earliest member — its leading
sentence — so feasibility judges ``now + swap + first sentence``
(the simulator's exact schedule; the same rule EDF's eviction test
uses). Only when no device is feasible does it fall back to the
earliest-finishing one — deadline feasibility is a constraint, energy
the objective.

Heterogeneous routing falls out of that rule: tight-SLO ``lai``
traffic lands on the big (high ``mac_vector_size``) devices because the
small ones are infeasible for it, while relaxed-SLO batches flow to the
smaller, cheaper-per-joule devices — and, via the transition term, to
devices already parked near the rail they need. The same term is how
sleep states are weighed: a device past its standby timeout is priced
waking from the retention voltage, so the governor routes to an awake
device unless the sleeper's compute advantage pays for the wake. Under
deadline-aware dispatch the compute term itself comes from the
deadline-budget DVFS plan, so min-joules placement sees the real
(cheaper) cost of relaxed batches rather than their per-sentence
sprint price. The governor is
work-conserving (it never idles a free device while work is pending)
and non-preemptive; pair it with a cluster-wide
:class:`~repro.energy.EnergyBudget` for Camel-style admission
throttling.
"""

from __future__ import annotations

from repro.cluster.policies import SchedulingPolicy
from repro.errors import EnergyError


class EnergyGovernor(SchedulingPolicy):
    """Min-joules placement under a deadline-feasibility constraint."""

    name = "energy"
    preemptive = False

    def __init__(self, slack_ms=0.0):
        if slack_ms < 0:
            raise EnergyError("slack_ms must be non-negative")
        #: Extra tolerance added to deadlines in the feasibility test
        #: (0 = strict: predicted completion must meet the SLO).
        self.slack_ms = float(slack_ms)

    def next_placement(self, pending, free_accels, now_ms):
        """Place the most urgent batch on its cheapest feasible device."""
        pb = min(pending, key=lambda pb: (pb.deadline_ms, pb.seq))
        best_key = best_accel = None
        for accel in free_accels:
            est = accel.estimate(pb, now_ms)
            finish = now_ms + est.swap_ms + est.latency_ms
            # The batch's deadline belongs to its earliest member, which
            # is its leading sentence — feasibility judges when *that*
            # sentence lands, not the whole batch's tail (same rule as
            # EDF's eviction test).
            first_done = now_ms + est.swap_ms + est.first_latency_ms
            feasible = first_done \
                <= pb.deadline_ms + self.slack_ms + 1e-9
            # Feasible placements first; among them, least joules; the
            # (finish, accel_id) tail keeps every tie deterministic and
            # makes the infeasible fallback earliest-completion.
            key = (not feasible,
                   est.total_energy_mj if feasible else finish,
                   finish, accel.accel_id)
            if best_key is None or key < best_key:
                best_key, best_accel = key, accel
        return pb, best_accel
