"""Telemetry drivers: span-log replay and the ``--smoke`` self-check.

``python -m repro.telemetry SPANS.jsonl`` replays a JSONL span log (a
tracer spill or :func:`~repro.telemetry.write_spans_jsonl` output) and
renders the text timeline plus the per-track/per-category summary;
``--chrome OUT.json`` additionally re-exports it as a Perfetto-loadable
Chrome trace.

``python -m repro.telemetry --smoke`` is the observability CI gate,
mirroring ``python -m repro.cluster`` / ``python -m repro.fleet``: it
runs a reference workload untraced and traced on **both** cluster
engines and through the fleet orchestrator, then self-checks the
contracts this subsystem promises —

* tracing is read-only: every traced report is bit-identical to its
  untraced twin (and the two engines agree with each other);
* the span-energy rollup reconciles against the run's energy ledgers
  at 1e-9, per category, per scope, and fleet-wide;
* a spilling tracer (bounded memory) replays the same span log and the
  same rollup as an unbounded one;
* the JSONL round trip is lossless and the Chrome export passes the
  schema contract.

Exits non-zero on any regression.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

from repro.cluster import ClusterSimulator
from repro.config import GLUE_TASKS
from repro.errors import ReproError, TelemetryError
from repro.fleet import FleetAutoscaler, FleetOrchestrator
from repro.serving import synthetic_registry, synthetic_traffic
from repro.telemetry import (MetricsRegistry, Tracer, chrome_trace,
                             read_spans_jsonl, reconcile_cluster,
                             reconcile_fleet, render_metrics,
                             render_summary, render_timeline,
                             validate_chrome_trace, write_chrome_trace,
                             write_spans_jsonl)


def reference_workload(num_requests=300, n_sentences=64, seed=0):
    """Registry + mixed-mode trace the smoke gate replays everywhere."""
    registry = synthetic_registry(GLUE_TASKS, n=n_sentences, seed=seed)
    trace = synthetic_traffic(registry, num_requests, seed=seed,
                              mean_interarrival_ms=1.0,
                              modes=("base", "lai"))
    return registry, trace


def _check(condition, message):
    # Explicit check (not assert): the smoke gate must still gate under
    # ``python -O``, which strips assert statements.
    if not condition:
        raise TelemetryError(f"smoke check failed: {message}")


def _canonical(report):
    return json.dumps(report.summary(), sort_keys=True)


def _run_cluster(registry, trace, engine, tracer=None, metrics=None):
    # No energy budget here: the vector engine refuses budgeted
    # configs, and both engines must run the identical setup for the
    # cross-engine check. The fleet leg (capped edge-c site) covers
    # the budget-track hooks.
    sim = ClusterSimulator(registry, num_accelerators=4,
                           policy="affinity", engine=engine,
                           standby_timeout_ms=20.0,
                           tracer=tracer, metrics=metrics)
    return sim.run(trace)


def _smoke_cluster(registry, trace, workdir):
    """Traced == untraced on both engines + reconciliation + spill."""
    summaries = {}
    for engine in ("event", "vector"):
        untraced = _canonical(_run_cluster(registry, trace, engine))

        tracer = Tracer()
        metrics = MetricsRegistry()
        report = _run_cluster(registry, trace, engine,
                              tracer=tracer, metrics=metrics)
        traced = _canonical(report)
        _check(traced == untraced,
               f"{engine}: tracing perturbed the report")
        _check(tracer.emitted > 0, f"{engine}: tracer saw no spans")
        reconcile_cluster(tracer, report, tol=1e-9)
        summaries[engine] = traced

        served = metrics.counter("requests_served", scope="cluster")
        _check(served.value == len(report.records),
               f"{engine}: served counter {served.value} != "
               f"{len(report.records)} records")

        # Bounded memory: a spilling tracer must replay the identical
        # span log and carry the identical energy rollup.
        spill = os.path.join(workdir, f"spill_{engine}.jsonl")
        with Tracer(max_spans=64, spill_path=spill) as spiller:
            spilled_report = _run_cluster(registry, trace, engine,
                                          tracer=spiller)
            _check(_canonical(spilled_report) == untraced,
                   f"{engine}: spilling tracer perturbed the report")
            _check(spiller.spilled > 0,
                   f"{engine}: spill cap never triggered")
            full = [s.to_dict() for s in tracer.iter_spans()]
            streamed = [s.to_dict() for s in spiller.iter_spans()]
            _check(streamed == full,
                   f"{engine}: spilled span log diverges from in-memory")
            _check(spiller.rollup() == tracer.rollup(),
                   f"{engine}: spilled rollup diverges")

        # Lossless JSONL round trip and a schema-valid Chrome export.
        log_path = os.path.join(workdir, f"spans_{engine}.jsonl")
        count = write_spans_jsonl(tracer, log_path)
        _check(count == tracer.emitted, f"{engine}: span log dropped rows")
        reread = [s.to_dict() for s in read_spans_jsonl(log_path)]
        _check(reread == full, f"{engine}: JSONL round trip is lossy")
        trace_dict = chrome_trace(tracer)
        _check(validate_chrome_trace(trace_dict) == tracer.emitted,
               f"{engine}: chrome export lost events")
        _check(chrome_trace(read_spans_jsonl(log_path)) == trace_dict,
               f"{engine}: chrome export not reproducible from JSONL")

        _check("(no spans)" not in render_timeline(tracer.iter_spans()),
               f"{engine}: timeline rendered empty")

    # The engines already emit identical reports; make it explicit.
    _check(summaries["event"] == summaries["vector"],
           "event and vector engines disagree under tracing")
    return summaries


def _smoke_fleet(registry, trace):
    """Traced fleet run: bit-identity + every-ledger reconciliation."""
    from repro.fleet.__main__ import reference_fleet

    def run(tracer=None, metrics=None):
        fleet = FleetOrchestrator(registry, reference_fleet(),
                                  routing="energy",
                                  autoscaler=FleetAutoscaler(),
                                  tracer=tracer, metrics=metrics)
        return fleet.run(trace)

    untraced = _canonical(run())
    tracer = Tracer()
    metrics = MetricsRegistry()
    report = run(tracer=tracer, metrics=metrics)
    _check(_canonical(report) == untraced,
           "fleet: tracing perturbed the report")
    reconcile_fleet(tracer, report, tol=1e-9)
    scopes = {s.scope for s in tracer.iter_spans()}
    for outcome in report.sites:
        _check(outcome.site_id in scopes,
               f"fleet: no spans for site {outcome.site_id}")
    _check("fleet" in scopes, "fleet: no front-end router/scaler spans")
    validate_chrome_trace(chrome_trace(tracer))
    return untraced


def run_smoke(num_requests=300, n_sentences=64, seed=0, verbose=True):
    """End-to-end observability pass; returns the checked summaries."""
    registry, trace = reference_workload(num_requests, n_sentences, seed)
    with tempfile.TemporaryDirectory(prefix="repro_telemetry_") as tmp:
        summaries = _smoke_cluster(registry, trace, tmp)
    summaries["fleet"] = _smoke_fleet(registry, trace)
    if verbose:
        print(json.dumps({k: json.loads(v)
                          for k, v in sorted(summaries.items())},
                         indent=2, sort_keys=True))
    return summaries


def run_replay(path, width=72, max_tracks=32, chrome_out=None,
               verbose=True):
    """Render a JSONL span log; optionally re-export it for Perfetto."""
    spans = read_spans_jsonl(path)
    if verbose:
        print(render_timeline(spans, width=width, max_tracks=max_tracks))
        print()
        print(render_summary(spans))
    if chrome_out is not None:
        count = write_chrome_trace(spans, chrome_out)
        validate_chrome_trace(chrome_trace(spans))
        if verbose:
            print(f"\nwrote {count} events to {chrome_out} "
                  "(load in https://ui.perfetto.dev)")
    return len(spans)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Replay span logs and self-check the tracing stack")
    parser.add_argument("spans", nargs="?", metavar="SPANS.jsonl",
                        help="JSONL span log to render")
    parser.add_argument("--smoke", action="store_true",
                        help="run the observability self-check gate")
    parser.add_argument("--chrome", metavar="OUT.json",
                        help="also export the span log as a Chrome trace")
    parser.add_argument("--width", type=int, default=72,
                        help="timeline width in character cells")
    parser.add_argument("--max-tracks", type=int, default=32,
                        help="max timeline lanes before clipping")
    parser.add_argument("--requests", type=int, default=300,
                        help="trace length for the smoke pass")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    if not args.smoke and args.spans is None:
        parser.error("nothing to do; pass SPANS.jsonl or --smoke")
    try:
        if args.smoke:
            run_smoke(num_requests=args.requests, seed=args.seed,
                      verbose=not args.quiet)
        if args.spans is not None:
            run_replay(args.spans, width=args.width,
                       max_tracks=args.max_tracks,
                       chrome_out=args.chrome,
                       verbose=not args.quiet)
    except (AssertionError, ReproError, OSError) as exc:
        print(f"RUN FAILED: {exc}", file=sys.stderr)
        return 1
    if not args.quiet and args.smoke:
        print("telemetry smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
