"""Prometheus / OpenMetrics text exposition for a MetricsRegistry.

:func:`render_openmetrics` serializes every instrument of a
:class:`~repro.telemetry.MetricsRegistry` into the OpenMetrics text
format (the `# TYPE` / `# EOF` framed superset of the Prometheus
exposition format), so a simulated run's final metric state can be
scraped, diffed, or loaded into any Prometheus-compatible stack:

* counters expose one ``<name>_total`` sample;
* gauges expose their last set value (unset gauges contribute only
  their ``# TYPE`` metadata);
* histograms expose cumulative ``<name>_bucket{le="..."}`` samples —
  per-bucket counts summed up through each upper bound, closing with
  ``le="+Inf"`` — plus ``<name>_sum`` and ``<name>_count``.

Families whose name ends in a recognized unit suffix (``_ms``
milliseconds, ``_mj`` millijoules) additionally carry a ``# UNIT``
metadata line, and passing ``timestamp_ms`` stamps every sample with
an explicit OpenMetrics timestamp (seconds on the sim clock) — so a
scraper archiving one exposition per replay epoch keeps the samples
ordered without trusting scrape time.

Output is deterministic: families sort by name, samples by label set
(the registry's own canonical ordering), floats render via ``repr``
(shortest round-trip form). Mixing two instrument types under one
metric name is invalid exposition and raises
:class:`~repro.errors.TelemetryError`.
"""

from __future__ import annotations

from repro.errors import TelemetryError
from repro.telemetry.metrics import Counter, Gauge, Histogram

_TYPE_NAMES = {Counter: "counter", Gauge: "gauge",
               Histogram: "histogram"}

#: Metric-name suffixes that earn a ``# UNIT`` metadata line.
UNIT_SUFFIXES = {"_ms": "ms", "_mj": "mj"}


def _unit_of(name):
    for suffix, unit in UNIT_SUFFIXES.items():
        if name.endswith(suffix):
            return unit
    return None


def _escape(value):
    return (str(value).replace("\\", "\\\\").replace("\"", "\\\"")
            .replace("\n", "\\n"))


def _labels_text(labels, extra=()):
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _num(value):
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_openmetrics(registry, timestamp_ms=None):
    """The registry's full state as OpenMetrics text (ends ``# EOF``).

    ``timestamp_ms`` (sim-clock milliseconds) adds an explicit
    OpenMetrics timestamp — rendered in seconds — to every sample line.
    """
    stamp = ""
    if timestamp_ms is not None:
        if not isinstance(timestamp_ms, (int, float)) \
                or isinstance(timestamp_ms, bool) or timestamp_ms < 0:
            raise TelemetryError(
                f"timestamp_ms must be a non-negative sim time, "
                f"got {timestamp_ms!r}")
        stamp = f" {_num(timestamp_ms / 1000.0)}"
    families = {}  # name -> (type_name, [(labels, instrument)])
    for name, labels, instrument in registry.instruments():
        type_name = _TYPE_NAMES.get(type(instrument))
        if type_name is None:
            raise TelemetryError(
                f"cannot expose {type(instrument).__name__} {name!r}")
        family = families.get(name)
        if family is None:
            families[name] = (type_name, [(labels, instrument)])
        elif family[0] != type_name:
            raise TelemetryError(
                f"metric {name!r} mixes types {family[0]} and "
                f"{type_name}; one exposition family needs one type")
        else:
            family[1].append((labels, instrument))

    lines = []
    for name in sorted(families):
        type_name, rows = families[name]
        lines.append(f"# TYPE {name} {type_name}")
        unit = _unit_of(name)
        if unit is not None:
            lines.append(f"# UNIT {name} {unit}")
        for labels, instrument in rows:
            if type_name == "counter":
                lines.append(f"{name}_total{_labels_text(labels)} "
                             f"{_num(instrument.value)}{stamp}")
            elif type_name == "gauge":
                if instrument.value is not None:
                    lines.append(f"{name}{_labels_text(labels)} "
                                 f"{_num(instrument.value)}{stamp}")
            else:  # histogram
                running = 0
                for bound, count in zip(instrument.bounds,
                                        instrument.counts):
                    running += count
                    le = _labels_text(labels,
                                      (("le", repr(float(bound))),))
                    lines.append(f"{name}_bucket{le} {running}{stamp}")
                inf = _labels_text(labels, (("le", "+Inf"),))
                lines.append(f"{name}_bucket{inf} "
                             f"{instrument.count}{stamp}")
                lines.append(f"{name}_sum{_labels_text(labels)} "
                             f"{_num(instrument.total)}{stamp}")
                lines.append(f"{name}_count{_labels_text(labels)} "
                             f"{instrument.count}{stamp}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(registry, path, timestamp_ms=None):
    """Write :func:`render_openmetrics` output; returns the line count."""
    text = render_openmetrics(registry, timestamp_ms=timestamp_ms)
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)
    return text.count("\n")
