"""Prometheus / OpenMetrics text exposition for a MetricsRegistry.

:func:`render_openmetrics` serializes every instrument of a
:class:`~repro.telemetry.MetricsRegistry` into the OpenMetrics text
format (the `# TYPE` / `# EOF` framed superset of the Prometheus
exposition format), so a simulated run's final metric state can be
scraped, diffed, or loaded into any Prometheus-compatible stack:

* counters expose one ``<name>_total`` sample;
* gauges expose their last set value (unset gauges contribute only
  their ``# TYPE`` metadata);
* histograms expose cumulative ``<name>_bucket{le="..."}`` samples —
  per-bucket counts summed up through each upper bound, closing with
  ``le="+Inf"`` — plus ``<name>_sum`` and ``<name>_count``.

Output is deterministic: families sort by name, samples by label set
(the registry's own canonical ordering), floats render via ``repr``
(shortest round-trip form). Mixing two instrument types under one
metric name is invalid exposition and raises
:class:`~repro.errors.TelemetryError`.
"""

from __future__ import annotations

from repro.errors import TelemetryError
from repro.telemetry.metrics import Counter, Gauge, Histogram

_TYPE_NAMES = {Counter: "counter", Gauge: "gauge",
               Histogram: "histogram"}


def _escape(value):
    return (str(value).replace("\\", "\\\\").replace("\"", "\\\"")
            .replace("\n", "\\n"))


def _labels_text(labels, extra=()):
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _num(value):
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_openmetrics(registry):
    """The registry's full state as OpenMetrics text (ends ``# EOF``)."""
    families = {}  # name -> (type_name, [(labels, instrument)])
    for name, labels, instrument in registry.instruments():
        type_name = _TYPE_NAMES.get(type(instrument))
        if type_name is None:
            raise TelemetryError(
                f"cannot expose {type(instrument).__name__} {name!r}")
        family = families.get(name)
        if family is None:
            families[name] = (type_name, [(labels, instrument)])
        elif family[0] != type_name:
            raise TelemetryError(
                f"metric {name!r} mixes types {family[0]} and "
                f"{type_name}; one exposition family needs one type")
        else:
            family[1].append((labels, instrument))

    lines = []
    for name in sorted(families):
        type_name, rows = families[name]
        lines.append(f"# TYPE {name} {type_name}")
        for labels, instrument in rows:
            if type_name == "counter":
                lines.append(f"{name}_total{_labels_text(labels)} "
                             f"{_num(instrument.value)}")
            elif type_name == "gauge":
                if instrument.value is not None:
                    lines.append(f"{name}{_labels_text(labels)} "
                                 f"{_num(instrument.value)}")
            else:  # histogram
                running = 0
                for bound, count in zip(instrument.bounds,
                                        instrument.counts):
                    running += count
                    le = _labels_text(labels,
                                      (("le", repr(float(bound))),))
                    lines.append(f"{name}_bucket{le} {running}")
                inf = _labels_text(labels, (("le", "+Inf"),))
                lines.append(f"{name}_bucket{inf} {instrument.count}")
                lines.append(f"{name}_sum{_labels_text(labels)} "
                             f"{_num(instrument.total)}")
                lines.append(f"{name}_count{_labels_text(labels)} "
                             f"{instrument.count}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(registry, path):
    """Write :func:`render_openmetrics` output; returns the line count."""
    text = render_openmetrics(registry)
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)
    return text.count("\n")
