"""Deterministic tracing, metrics and timeline export for the stack.

Every layer of the runtime — serving, cluster, energy, DVFS, fleet —
simulates on one event clock; this subsystem makes that clock
observable without perturbing it:

* :class:`Tracer` / :class:`Span` — hierarchical sim-clock spans
  (fleet → site → device → batch → request) covering queue wait,
  batch-former residency, encoder swaps, DVFS rail transitions,
  compute, preemption/abort, budget throttles, autoscaler park/wake
  and network legs. The default everywhere is :data:`NULL_TRACER`
  (``enabled=False``), so untraced runs pay one attribute test per
  hook and stay bit-identical to pre-telemetry builds. ``max_spans``
  + ``spill_path`` stream spans to JSONL past an in-memory cap, so
  tracing a million-request replay keeps RSS flat.
* :class:`MetricsRegistry` — labeled counters / gauges / histograms
  sampled at event instants (queue depth, free devices, budget
  headroom, served/violated counts, latency distributions) with
  bounded ring-buffer series.
* Exporters — Chrome trace-event JSON for Perfetto
  (:func:`write_chrome_trace`), JSONL span logs
  (:func:`write_spans_jsonl`), and text rendering
  (:func:`render_timeline`, :func:`render_summary`).
* Ledger audit — :func:`reconcile_cluster` / :func:`reconcile_fleet`
  hold the traced per-category energy rollup against the run's
  :class:`~repro.energy.EnergyReport` / fleet ledgers at 1e-9, so
  every traced run doubles as an end-to-end energy audit.
* Monitoring — :mod:`repro.telemetry.monitor` watches the streams:
  SLO burn-rate rules, anomaly watchdogs, incident grouping and
  health scores (``python -m repro.telemetry.monitor --smoke``), plus
  :func:`render_openmetrics` for Prometheus-format scrapes.

``python -m repro.telemetry --smoke`` is the self-checking CI gate;
``python -m repro.telemetry SPANLOG`` replays a JSONL span log into a
text timeline + summary.
"""

from repro.telemetry.export import (
    chrome_trace,
    iter_spans_jsonl,
    read_spans_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    estimate_quantile,
)
from repro.telemetry.monitor import (
    Alert,
    Incident,
    IncidentReport,
    TelemetryMonitor,
    default_rules,
    group_incidents,
    parse_rules,
)
from repro.telemetry.openmetrics import (
    render_openmetrics,
    write_openmetrics,
)
from repro.telemetry.timeline import (
    render_metrics,
    render_summary,
    render_timeline,
)
from repro.telemetry.tracer import (
    ENERGY_CATEGORIES,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    reconcile_cluster,
    reconcile_fleet,
)

__all__ = [
    "ENERGY_CATEGORIES",
    "NULL_TRACER",
    "DEFAULT_BUCKETS_MS",
    "Alert",
    "Counter",
    "Gauge",
    "Histogram",
    "Incident",
    "IncidentReport",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "TelemetryMonitor",
    "Tracer",
    "chrome_trace",
    "default_rules",
    "estimate_quantile",
    "group_incidents",
    "iter_spans_jsonl",
    "parse_rules",
    "read_spans_jsonl",
    "reconcile_cluster",
    "reconcile_fleet",
    "render_metrics",
    "render_openmetrics",
    "render_summary",
    "render_timeline",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_openmetrics",
    "write_spans_jsonl",
]
