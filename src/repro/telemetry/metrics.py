"""Labeled counters, gauges and histograms on the simulated clock.

A :class:`MetricsRegistry` is the time-series side of
:mod:`repro.telemetry`: where the tracer records *what happened*, the
registry records *how the system looked* while it happened — queue
depth, free devices, budget headroom, served/violated counts, latency
distributions — all sampled at event instants on the simulated clock,
so a metrics stream is exactly as deterministic as the run it observed.

Design constraints, in order:

* **bounded** — gauges keep a ring buffer of their last
  ``series_maxlen`` ``(t_ms, value)`` samples (a 1M-request replay
  sampling queue depth per batch event must not grow RSS without
  bound); counters and histograms are O(1) by construction;
* **deterministic** — ``summary()`` orders everything by (name, sorted
  labels), and nothing reads the wall clock;
* **cheap** — instruments are created once (``registry.counter(...)``
  get-or-creates) and hot paths touch plain attributes.

Labels are keyword arguments (``registry.counter("requests_served",
scope="edge-a")``); each distinct label set is its own instrument, so
a fleet run handing one registry to every site keeps per-site series
separate.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from collections import deque

import numpy as np

from repro.errors import TelemetryError

#: Default histogram bucket upper bounds (ms) — log-spaced to cover
#: sub-ms batch windows through multi-second queue blowups.
DEFAULT_BUCKETS_MS = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
                      200.0, 500.0, 1000.0, 5000.0)


def _label_key(labels):
    return tuple(sorted(labels.items()))


def estimate_quantile(bounds, counts, count, q, hi=None):
    """Interpolated quantile from fixed-bucket counts.

    ``bounds`` are the bucket upper edges, ``counts`` the per-bucket
    tallies with the ``+Inf`` overflow bucket last (``len(bounds) + 1``
    entries), ``count`` their sum. Linear interpolation inside the
    bucket holding the q-rank assumes observations spread uniformly
    across it — the standard Prometheus ``histogram_quantile`` model.
    The overflow bucket has no finite upper edge, so ranks landing
    there interpolate toward ``hi`` (the observed max) when known and
    clamp to the last finite bound otherwise.
    """
    if not 0.0 <= q <= 1.0:
        raise TelemetryError(f"quantile {q} outside [0, 1]")
    if not count:
        return 0.0
    rank = q * count
    running = 0
    for i, n in enumerate(counts):
        if not n:
            continue
        if running + n >= rank:
            lower = bounds[i - 1] if i > 0 else 0.0
            if i < len(bounds):
                upper = bounds[i]
            elif hi is not None and hi > lower:
                upper = hi
            else:
                return bounds[-1]
            return lower + (upper - lower) * (rank - running) / n
        running += n
    # Unreachable when count == sum(counts); be safe on drifted input.
    return bounds[-1] if hi is None else hi


class Counter:
    """Monotonic event count (optionally value-weighted)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name, labels):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def summary(self):
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-value instrument with a bounded ``(t_ms, value)`` series."""

    __slots__ = ("name", "labels", "value", "t_ms", "series", "samples")

    def __init__(self, name, labels, series_maxlen):
        self.name = name
        self.labels = labels
        self.value = None
        self.t_ms = None
        self.samples = 0
        self.series = deque(maxlen=series_maxlen)

    def set(self, t_ms, value):
        self.t_ms = float(t_ms)
        self.value = value
        self.samples += 1
        self.series.append((self.t_ms, value))

    def mean(self):
        """Mean over the retained ring-buffer window."""
        if not self.series:
            return 0.0
        return math.fsum(v for _, v in self.series) / len(self.series)

    def peak(self):
        if not self.series:
            return 0.0
        return max(v for _, v in self.series)

    def summary(self):
        return {"type": "gauge", "last": self.value,
                "samples": self.samples,
                "window_mean": self.mean(), "window_peak": self.peak()}


class Histogram:
    """Fixed-bucket distribution; O(buckets) per observation."""

    __slots__ = ("name", "labels", "bounds", "bounds_arr", "counts",
                 "total", "count", "min", "max")

    def __init__(self, name, labels, bounds):
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(bounds):
            raise TelemetryError(
                f"histogram {name} needs sorted, non-empty bounds")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.bounds_arr = np.asarray(bounds, dtype=np.float64)
        self.counts = [0] * (len(bounds) + 1)  # +overflow
        self.total = 0.0
        self.count = 0
        self.min = None
        self.max = None

    def _bucket(self, value):
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def observe(self, value):
        value = float(value)
        self.counts[self._bucket(value)] += 1
        self.total += value
        self.count += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def observe_many(self, values):
        """Bulk :meth:`observe`: same sequential float accumulation
        (``total`` grows strictly left-to-right, so a bulk call equals
        the per-value loop bit-for-bit), with the bucket search done in
        bulk — the replay engine feeds whole batches through here on
        its hot path. A float64 ndarray takes the vectorized route
        (one :func:`numpy.searchsorted` + :func:`numpy.bincount` per
        call; ``searchsorted(..., side="left")`` places every value in
        exactly the bucket :func:`bisect.bisect_left` would); anything
        else falls back to the per-value C-level bisect loop. Both
        routes keep the strictly left-to-right ``total``, so engines
        mixing per-value and bulk observation stay bit-identical."""
        if isinstance(values, np.ndarray):
            if not values.size:
                return
            idx = np.searchsorted(self.bounds_arr, values, side="left")
            counts = self.counts
            for bucket, n in zip(*np.unique(idx, return_counts=True)):
                counts[bucket] += int(n)
            total = self.total
            values = values.tolist()
            for value in values:
                total += value
            self.total = total
            self.count += len(values)
            lo = min(values)
            hi = max(values)
        else:
            if not isinstance(values, (list, tuple)):
                values = [float(v) for v in values]
            if not values:
                return
            counts = self.counts
            bounds = self.bounds
            total = self.total
            for value in values:
                counts[bisect_left(bounds, value)] += 1
                total += value
            self.total = total
            self.count += len(values)
            lo = min(values)
            hi = max(values)
        if self.min is None or lo < self.min:
            self.min = lo
        if self.max is None or hi > self.max:
            self.max = hi

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def quantile(self, q):
        """Bucket-resolution quantile (upper bound of the q-bucket)."""
        if not 0.0 <= q <= 1.0:
            raise TelemetryError(f"quantile {q} outside [0, 1]")
        if not self.count:
            return 0.0
        rank = q * self.count
        running = 0
        for i, n in enumerate(self.counts):
            running += n
            if running >= rank and n:
                return self.bounds[i] if i < len(self.bounds) \
                    else self.max
        return self.max

    def quantile_estimate(self, q):
        """Interpolated quantile — p99 without storing samples.

        Linear interpolation inside the bucket holding the q-rank
        (uniform-within-bucket model); the ``+Inf`` overflow bucket
        interpolates toward the exact observed ``max``, and the result
        is clamped to the observed ``[min, max]`` so a coarse first
        bucket can never report a quantile below the smallest sample.
        Exact at the edges: ``q=0`` is ``min``, ``q=1`` is ``max``.
        """
        if not self.count:
            return estimate_quantile(self.bounds, self.counts, 0, q)
        value = estimate_quantile(self.bounds, self.counts, self.count,
                                  q, hi=self.max)
        return min(max(value, self.min), self.max)

    def summary(self):
        return {"type": "histogram", "count": self.count,
                "mean": self.mean, "min": self.min, "max": self.max,
                "p50": self.quantile(0.50), "p95": self.quantile(0.95),
                "p99": self.quantile(0.99),
                "buckets": dict(zip([f"le_{b:g}" for b in self.bounds]
                                    + ["inf"], self.counts))}


class MetricsRegistry:
    """Get-or-create instrument store keyed by (name, labels)."""

    def __init__(self, series_maxlen=4096):
        if series_maxlen < 1:
            raise TelemetryError("series_maxlen must be >= 1")
        self.series_maxlen = int(series_maxlen)
        self._instruments = {}

    def _get(self, cls, name, labels, factory):
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = self._instruments[key] = factory()
        elif not isinstance(instrument, cls):
            raise TelemetryError(
                f"{name} already registered as "
                f"{type(instrument).__name__}")
        return instrument

    def counter(self, name, **labels):
        return self._get(Counter, name, labels,
                         lambda: Counter(name, _label_key(labels)))

    def gauge(self, name, **labels):
        return self._get(Gauge, name, labels,
                         lambda: Gauge(name, _label_key(labels),
                                       self.series_maxlen))

    def histogram(self, name, bounds=DEFAULT_BUCKETS_MS, **labels):
        return self._get(Histogram, name, labels,
                         lambda: Histogram(name, _label_key(labels),
                                           bounds))

    def instruments(self):
        """(name, labels, instrument) rows in deterministic order."""
        return [(name, labels, self._instruments[(name, labels)])
                for name, labels in sorted(self._instruments)]

    def summary(self):
        """JSON-friendly deterministic dump of every instrument."""
        out = {}
        for name, labels, instrument in self.instruments():
            label_str = ",".join(f"{k}={v}" for k, v in labels)
            key = f"{name}{{{label_str}}}" if label_str else name
            out[key] = instrument.summary()
        return out
