"""Monitor drivers: rule replay, OpenMetrics dump, ``--smoke`` gate.

``python -m repro.telemetry.monitor --replay SPANS.jsonl`` re-runs the
anomaly watchdogs over a recorded span log (a tracer spill or
:func:`~repro.telemetry.write_spans_jsonl` output) and prints the
incident report; ``--rules RULES.json`` swaps in a custom rule set,
``--alerts OUT.jsonl`` persists the report, ``--openmetrics`` prints
the reconstructed registry in Prometheus text format.

``python -m repro.telemetry.monitor --smoke`` is the monitoring CI
gate, mirroring ``python -m repro.telemetry --smoke``: it runs a
reference workload monitored and unmonitored on **both** cluster
engines and through the fleet orchestrator, then self-checks the
contracts this subsystem promises —

* monitoring is read-only: every monitored report is bit-identical to
  its unmonitored twin, on both engines and fleet-wide (health
  subscriptions default off);
* the Alert/Incident stream is engine-invariant: the event and vector
  engines produce byte-identical report summaries, with or without a
  spilling tracer attached;
* a hostile workload (tight SLOs + thrash-prone scheduling) actually
  fires burn-rate, latency and watchdog alerts — the gate fails if
  the rules go silent;
* the IncidentReport JSONL round trip is lossless, its timeline spans
  render, and the OpenMetrics exposition is well-formed (``# EOF``
  framed, counters suffixed ``_total``);
* energy ledgers still reconcile at 1e-9 under monitoring.

Exits non-zero on any regression.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

from repro.cluster import ClusterSimulator
from repro.errors import ReproError, TelemetryError
from repro.fleet import FleetAutoscaler, FleetOrchestrator
from repro.serving import synthetic_registry, synthetic_traffic
from repro.telemetry import (MetricsRegistry, Tracer,
                             reconcile_cluster, reconcile_fleet,
                             render_openmetrics, render_timeline)
from repro.telemetry.__main__ import (_canonical, _check,
                                      reference_workload)
from repro.telemetry.monitor import (BurnRateRule, IncidentReport,
                                     LatencyQuantileRule,
                                     SwapThrashRule, TelemetryMonitor,
                                     default_rules, parse_rules)


def _run_cluster(registry, trace, engine, tracer=None, metrics=None,
                 monitor=None):
    sim = ClusterSimulator(registry, num_accelerators=4,
                           policy="affinity", engine=engine,
                           standby_timeout_ms=20.0, tracer=tracer,
                           metrics=metrics, monitor=monitor)
    return sim.run(trace)


def _monitor_report(registry, trace, engine, rules=None, tracer=None,
                    metrics=None):
    monitor = TelemetryMonitor(rules, registry=metrics)
    report = _run_cluster(registry, trace, engine, tracer=tracer,
                          metrics=metrics, monitor=monitor)
    monitor.finalize(report.makespan_ms)
    return report, monitor.report()


def _smoke_cluster(registry, trace, workdir):
    """Bit-identity + engine-invariant alert streams + spill."""
    streams = {}
    for engine in ("event", "vector"):
        plain = _canonical(_run_cluster(registry, trace, engine))
        metrics = MetricsRegistry()
        report, mon_report = _monitor_report(registry, trace, engine,
                                             metrics=metrics)
        _check(_canonical(report) == plain,
               f"{engine}: monitoring perturbed the report")
        streams[engine] = json.dumps(mon_report.summary(),
                                     sort_keys=True)

        # Monitoring composes with a spilling tracer: same report,
        # same alert stream, and the ledgers still reconcile.
        spill = os.path.join(workdir, f"spill_{engine}.jsonl")
        with Tracer(max_spans=64, spill_path=spill) as spiller:
            spilled, spilled_mon = _monitor_report(
                registry, trace, engine, tracer=spiller)
            _check(_canonical(spilled) == plain,
                   f"{engine}: monitored+spilling perturbed the report")
            _check(spiller.spilled > 0,
                   f"{engine}: spill cap never triggered")
            _check(json.dumps(spilled_mon.summary(), sort_keys=True)
                   == streams[engine],
                   f"{engine}: span spill changed the alert stream")
            reconcile_cluster(spiller, spilled, tol=1e-9)
    _check(streams["event"] == streams["vector"],
           "event and vector engines disagree on the alert stream")
    return streams["vector"]


def _smoke_alerts(workdir):
    """A hostile workload must actually fire the rules."""
    registry = synthetic_registry(("sst2", "mnli"), n=64, seed=1)
    trace = synthetic_traffic(registry, 600, seed=1,
                              mean_interarrival_ms=0.05,
                              targets_ms=(5.0,), modes=("base",))
    rules = (
        BurnRateRule("burn", slo_target=0.999, fast_window_ms=50.0,
                     slow_window_ms=250.0, fast_burn=14.0,
                     slow_burn=6.0, min_samples=10),
        LatencyQuantileRule("p99", q=0.99, threshold_ms=5.0,
                            window_ms=250.0, min_samples=10),
        SwapThrashRule("thrash", window_ms=200.0, threshold=3),
    )
    streams = {}
    for engine in ("event", "vector"):
        _, mon_report = _monitor_report(registry, trace, engine,
                                        rules=rules)
        kinds = {a.kind for a in mon_report.alerts}
        _check("burn_rate" in kinds,
               f"{engine}: burn-rate rule never fired under overload")
        _check("latency_quantile" in kinds,
               f"{engine}: latency rule never fired under overload")
        _check(mon_report.num_incidents > 0,
               f"{engine}: alerts never grouped into incidents")
        for incident in mon_report.incidents:
            _check(incident.root_cause.get("rule"),
                   f"{engine}: incident without a root cause")
        streams[engine] = json.dumps(mon_report.summary(),
                                     sort_keys=True)

        # Lossless JSONL round trip + renderable timeline lanes.
        path = os.path.join(workdir, f"alerts_{engine}.jsonl")
        rows = mon_report.to_jsonl(path)
        _check(rows == 1 + mon_report.num_alerts
               + mon_report.num_incidents,
               f"{engine}: alert JSONL dropped rows")
        reread = IncidentReport.from_jsonl(path)
        _check(json.dumps(reread.summary(), sort_keys=True)
               == streams[engine],
               f"{engine}: alert JSONL round trip is lossy")
        rendered = render_timeline(mon_report.spans())
        _check("alerts" in rendered,
               f"{engine}: alert lanes missing from the timeline")
    _check(streams["event"] == streams["vector"],
           "overloaded engines disagree on the alert stream")
    return streams["vector"]


def _smoke_fleet(registry, trace):
    """Monitored fleet: bit-identity, health gauges, 1e-9 ledgers."""
    from repro.fleet.__main__ import reference_fleet

    def run(tracer=None, metrics=None, monitor=None):
        fleet = FleetOrchestrator(registry, reference_fleet(),
                                  routing="energy",
                                  autoscaler=FleetAutoscaler(),
                                  tracer=tracer, metrics=metrics,
                                  monitor=monitor)
        return fleet.run(trace)

    plain = _canonical(run())
    tracer = Tracer()
    metrics = MetricsRegistry()
    monitor = TelemetryMonitor(registry=metrics)
    report = run(tracer=tracer, metrics=metrics, monitor=monitor)
    _check(_canonical(report) == plain,
           "fleet: monitoring perturbed the report")
    reconcile_fleet(tracer, report, tol=1e-9)
    monitor.finalize(max(r.completion_ms for r in report.records))
    mon_report = monitor.report()
    for outcome in report.sites:
        _check(outcome.site_id in mon_report.health,
               f"fleet: no health score for {outcome.site_id}")
        gauge = metrics.gauge("health_score", scope=outcome.site_id)
        _check(gauge.value is not None,
               f"fleet: health gauge never sampled for "
               f"{outcome.site_id}")
    return json.dumps(mon_report.summary(), sort_keys=True)


def _smoke_openmetrics(registry, trace):
    """The exposition is framed, typed, and counter-suffixed."""
    metrics = MetricsRegistry()
    report, _ = _monitor_report(registry, trace, "vector",
                                metrics=metrics)
    text = render_openmetrics(metrics)
    _check(text.endswith("# EOF\n"), "openmetrics: missing # EOF")
    _check("# TYPE requests_served counter" in text,
           "openmetrics: counter family untyped")
    _check(f'requests_served_total{{scope="cluster"}} '
           f"{len(report.records)}" in text,
           "openmetrics: served total wrong or unsuffixed")
    _check('time_in_system_ms_bucket{scope="cluster",le="+Inf"} '
           f"{len(report.records)}" in text,
           "openmetrics: histogram +Inf bucket must equal count")
    _check(text == render_openmetrics(metrics),
           "openmetrics: exposition not deterministic")
    return text.count("\n")


def run_smoke(num_requests=300, n_sentences=64, seed=0, verbose=True):
    """End-to-end monitoring pass; returns the checked streams."""
    registry, trace = reference_workload(num_requests, n_sentences,
                                         seed)
    with tempfile.TemporaryDirectory(prefix="repro_monitor_") as tmp:
        streams = {
            "cluster": json.loads(_smoke_cluster(registry, trace, tmp)),
            "overload": json.loads(_smoke_alerts(tmp)),
        }
    streams["fleet"] = json.loads(_smoke_fleet(registry, trace))
    streams["openmetrics_lines"] = _smoke_openmetrics(registry, trace)
    if verbose:
        counts = {
            key: {"alerts": len(value["alerts"]),
                  "incidents": len(value["incidents"]),
                  "health": value["health"]}
            for key, value in streams.items() if isinstance(value, dict)
        }
        counts["openmetrics_lines"] = streams["openmetrics_lines"]
        print(json.dumps(counts, indent=2, sort_keys=True))
    return streams


def run_replay(path, rules=None, alerts_out=None, openmetrics=False,
               verbose=True):
    """Watchdog the recorded span log; print/persist the incidents."""
    metrics = MetricsRegistry()
    monitor = TelemetryMonitor(rules, registry=metrics)
    fed = monitor.observe_spans(path)
    report = monitor.finalize()
    if verbose:
        print(json.dumps(report.summary(), indent=2, sort_keys=True))
        if report.alerts:
            print()
            print(render_timeline(report.spans()))
    if alerts_out is not None:
        report.to_jsonl(alerts_out)
        if verbose:
            print(f"\nwrote {report.num_alerts} alerts / "
                  f"{report.num_incidents} incidents to {alerts_out}")
    if openmetrics:
        print(render_openmetrics(metrics), end="")
    return fed


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.monitor",
        description="SLO monitoring: replay rules over span logs and "
                    "self-check the alerting stack")
    parser.add_argument("--replay", metavar="SPANS.jsonl",
                        help="run the watchdogs over a JSONL span log")
    parser.add_argument("--rules", metavar="RULES.json",
                        help="JSON rule set (default: built-in rules)")
    parser.add_argument("--alerts", metavar="OUT.jsonl",
                        help="persist the incident report as JSONL")
    parser.add_argument("--openmetrics", action="store_true",
                        help="print the registry in OpenMetrics text")
    parser.add_argument("--smoke", action="store_true",
                        help="run the monitoring self-check gate")
    parser.add_argument("--requests", type=int, default=300,
                        help="trace length for the smoke pass")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    if not args.smoke and args.replay is None:
        parser.error("nothing to do; pass --replay SPANS.jsonl or "
                     "--smoke")
    try:
        rules = parse_rules(args.rules) if args.rules else None
        if args.smoke:
            run_smoke(num_requests=args.requests, seed=args.seed,
                      verbose=not args.quiet)
        if args.replay is not None:
            run_replay(args.replay, rules=rules,
                       alerts_out=args.alerts,
                       openmetrics=args.openmetrics,
                       verbose=not args.quiet)
    except (AssertionError, ReproError, OSError) as exc:
        print(f"RUN FAILED: {exc}", file=sys.stderr)
        return 1
    if not args.quiet and args.smoke:
        print("telemetry monitor smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
