"""Declarative SLO rules: multi-window burn rates and latency quantiles.

The rule vocabulary follows the SRE workbook's multiwindow,
multi-burn-rate alerting: an SLO of 99.9% leaves an error budget of
0.1%, and the *burn rate* over a window is the observed violation
ratio divided by that budget (burn 1.0 = spending the budget exactly
at the sustainable rate). A :class:`BurnRateRule` fires only when BOTH
a fast window (catches the spike, resets quickly) and a slow window
(confirms it is sustained, not one bad batch) exceed their burn
thresholds — the standard page condition is 14.4× over 5m/1h-shaped
pairs, scaled here to simulation-sized windows.

Rules are frozen dataclasses so a rule set is hashable, comparable,
and JSON round-trippable (:func:`parse_rules` / ``rule.to_dict()``),
and every evaluation is pure arithmetic over windowed counts on the
simulated clock — the alert stream is exactly as deterministic as the
run that produced it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields

from repro.errors import TelemetryError
from repro.telemetry.monitor.alerts import severity_rank


def _positive(name, value):
    if not value > 0:
        raise TelemetryError(f"{name} must be positive, got {value}")
    return value


@dataclass(frozen=True)
class BurnRateRule:
    """Fast+slow window error-budget burn over SLO violations.

    ``slo_target`` is the availability objective (0.999 → 0.1% error
    budget). The rule tracks, per ``(scope, task, slo_ms)`` stream,
    completion outcomes in two sliding windows; it fires when the
    violation ratio in *both* windows exceeds ``burn × (1 −
    slo_target)`` with at least ``min_samples`` completions in the
    fast window. ``task`` / ``slo_ms`` / ``scope`` of None match every
    stream (one rule instantiates per-stream state lazily).
    """

    name: str
    slo_target: float = 0.999
    fast_window_ms: float = 50.0
    slow_window_ms: float = 250.0
    fast_burn: float = 14.0
    slow_burn: float = 6.0
    min_samples: int = 20
    severity: str = "page"
    task: str | None = None
    slo_ms: float | None = None
    scope: str | None = None

    kind = "burn_rate"

    def __post_init__(self):
        severity_rank(self.severity)
        if not 0.0 < self.slo_target < 1.0:
            raise TelemetryError(
                f"slo_target must sit in (0, 1), got {self.slo_target}")
        _positive("fast_window_ms", self.fast_window_ms)
        _positive("slow_window_ms", self.slow_window_ms)
        if self.fast_window_ms > self.slow_window_ms:
            raise TelemetryError(
                "fast window must not exceed the slow window "
                f"({self.fast_window_ms} > {self.slow_window_ms})")
        _positive("fast_burn", self.fast_burn)
        _positive("slow_burn", self.slow_burn)
        _positive("min_samples", self.min_samples)

    @property
    def error_budget(self):
        return 1.0 - self.slo_target

    def matches(self, scope, task, slo_ms):
        return ((self.scope is None or self.scope == scope)
                and (self.task is None or self.task == task)
                and (self.slo_ms is None or self.slo_ms == slo_ms))


@dataclass(frozen=True)
class LatencyQuantileRule:
    """Windowed latency quantile against a hard threshold.

    Tracks completion latencies per stream in one sliding window and
    fires while the interpolated ``q`` quantile (same estimator as
    :meth:`repro.telemetry.Histogram.quantile_estimate`, computed over
    the exact window samples) exceeds ``threshold_ms``.
    """

    name: str
    q: float = 0.99
    threshold_ms: float = 100.0
    window_ms: float = 250.0
    min_samples: int = 20
    severity: str = "ticket"
    task: str | None = None
    slo_ms: float | None = None
    scope: str | None = None

    kind = "latency_quantile"

    def __post_init__(self):
        severity_rank(self.severity)
        if not 0.0 <= self.q <= 1.0:
            raise TelemetryError(f"quantile {self.q} outside [0, 1]")
        _positive("threshold_ms", self.threshold_ms)
        _positive("window_ms", self.window_ms)
        _positive("min_samples", self.min_samples)

    def matches(self, scope, task, slo_ms):
        return ((self.scope is None or self.scope == scope)
                and (self.task is None or self.task == task)
                and (self.slo_ms is None or self.slo_ms == slo_ms))


def rule_to_dict(rule):
    """JSON row for any rule dataclass (adds the ``kind`` tag)."""
    row = {"kind": rule.kind}
    for f in fields(rule):
        value = getattr(rule, f.name)
        if value is not None:
            row[f.name] = value
    return row


def default_rules():
    """The stock rule set: SRE burn-rate pair + p99 + every watchdog.

    Window sizes are scaled to simulation time (tens of ms of sim
    clock stand in for the minutes/hours of the SRE workbook pairs).
    """
    from repro.telemetry.monitor.watchdogs import (
        FlapRule, QueueDepthRule, SwapThrashRule, ThrottleStormRule)
    return (
        BurnRateRule("slo-burn-fast", slo_target=0.999,
                     fast_window_ms=50.0, slow_window_ms=250.0,
                     fast_burn=14.0, slow_burn=6.0, min_samples=20,
                     severity="page"),
        LatencyQuantileRule("latency-p99", q=0.99, threshold_ms=100.0,
                            window_ms=250.0, min_samples=20,
                            severity="ticket"),
        ThrottleStormRule("throttle-storm", window_ms=100.0,
                          threshold=8, severity="page"),
        QueueDepthRule("queue-blowup", depth=512, sustain_ms=50.0,
                       severity="ticket"),
        SwapThrashRule("swap-thrash", window_ms=100.0, threshold=6,
                       severity="warn"),
        FlapRule("autoscale-flap", window_ms=200.0, threshold=4,
                 severity="warn"),
    )


_RULE_TYPES = None


def _rule_types():
    global _RULE_TYPES
    if _RULE_TYPES is None:
        from repro.telemetry.monitor.watchdogs import (
            FlapRule, QueueDepthRule, SwapThrashRule, ThrottleStormRule)
        _RULE_TYPES = {cls.kind: cls for cls in (
            BurnRateRule, LatencyQuantileRule, ThrottleStormRule,
            QueueDepthRule, SwapThrashRule, FlapRule)}
    return _RULE_TYPES


def parse_rule(row):
    """One rule from its ``{"kind": ..., ...}`` JSON row."""
    if not isinstance(row, dict):
        raise TelemetryError(f"rule row must be an object, got {row!r}")
    kind = row.get("kind")
    cls = _rule_types().get(kind)
    if cls is None:
        raise TelemetryError(
            f"unknown rule kind {kind!r}; expected one of "
            f"{sorted(_rule_types())}")
    known = {f.name for f in fields(cls)}
    extra = set(row) - known - {"kind"}
    if extra:
        raise TelemetryError(
            f"rule {row.get('name', kind)!r}: unknown fields "
            f"{sorted(extra)}")
    kwargs = {k: v for k, v in row.items() if k in known}
    if "name" not in kwargs:
        raise TelemetryError(f"rule of kind {kind!r} needs a name")
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise TelemetryError(f"rule {row['name']!r}: {exc}")


def parse_rules(source):
    """Rule tuple from a JSON list (path, JSON text, or parsed list).

    The file format is a JSON array of rule objects::

        [{"kind": "burn_rate", "name": "slo-burn", "slo_target": 0.999,
          "fast_window_ms": 50, "slow_window_ms": 250},
         {"kind": "queue_depth", "name": "blowup", "depth": 256}]
    """
    if isinstance(source, (list, tuple)):
        rows = source
    else:
        text = str(source)
        if "[" not in text:  # a path, not inline JSON
            with open(text, encoding="utf-8") as f:
                text = f.read()
        try:
            rows = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TelemetryError(f"rules are not valid JSON: {exc}")
        if not isinstance(rows, list):
            raise TelemetryError("rules file must hold a JSON array")
    rules = tuple(parse_rule(row) for row in rows)
    names = [r.name for r in rules]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise TelemetryError(f"duplicate rule names: {dupes}")
    return rules
