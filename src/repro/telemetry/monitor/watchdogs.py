"""Anomaly watchdogs: throttle storms, queue blowups, thrash, flapping.

Where :mod:`repro.telemetry.monitor.rules` watches the SLO itself,
watchdogs watch the *mechanisms* that usually break it first: the
energy budget throttling in bursts, the admission queue growing without
bound, a device swapping task weights back and forth instead of
serving, the autoscaler parking and waking the same accelerator in a
tight loop. Each is a frozen dataclass with the same
``matches``/``kind`` protocol as the SLO rules, so one rule list mixes
both kinds, and each fires a typed alert carrying span-locator
evidence (the throttle/swap/transition instants that tripped it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TelemetryError
from repro.telemetry.monitor.alerts import severity_rank
from repro.telemetry.monitor.rules import _positive


@dataclass(frozen=True)
class ThrottleStormRule:
    """Too many budget throttle events inside one sliding window.

    The energy budget emits one ``throttle`` span per deferred batch;
    occasional throttles are the budget working as designed, but
    ``threshold`` of them within ``window_ms`` on one scope means the
    power cap and the offered load have crossed — a storm.
    """

    name: str
    window_ms: float = 100.0
    threshold: int = 8
    severity: str = "page"
    scope: str | None = None

    kind = "throttle_storm"

    def __post_init__(self):
        severity_rank(self.severity)
        _positive("window_ms", self.window_ms)
        _positive("threshold", self.threshold)

    def matches(self, scope, task=None, slo_ms=None):
        return self.scope is None or self.scope == scope


@dataclass(frozen=True)
class QueueDepthRule:
    """Admission queue above ``depth`` for at least ``sustain_ms``.

    Depth is sampled at enqueue/dispatch events (the only instants it
    can change); the sustain requirement keeps a single burst that
    drains immediately from paging anyone.
    """

    name: str
    depth: int = 512
    sustain_ms: float = 50.0
    severity: str = "ticket"
    scope: str | None = None

    kind = "queue_depth"

    def __post_init__(self):
        severity_rank(self.severity)
        _positive("depth", self.depth)
        if self.sustain_ms < 0:
            raise TelemetryError(
                f"sustain_ms must be non-negative, got {self.sustain_ms}")

    def matches(self, scope, task=None, slo_ms=None):
        return self.scope is None or self.scope == scope


@dataclass(frozen=True)
class SwapThrashRule:
    """One device swapping task weights ``threshold`` times per window.

    Swaps cost time and energy; a device that keeps alternating tasks
    is a scheduling-affinity failure (the policy is bouncing work
    instead of batching it), tracked per ``(scope, accel_id)``.
    """

    name: str
    window_ms: float = 100.0
    threshold: int = 6
    severity: str = "warn"
    scope: str | None = None

    kind = "swap_thrash"

    def __post_init__(self):
        severity_rank(self.severity)
        _positive("window_ms", self.window_ms)
        _positive("threshold", self.threshold)

    def matches(self, scope, task=None, slo_ms=None):
        return self.scope is None or self.scope == scope


@dataclass(frozen=True)
class FlapRule:
    """Autoscaler park/wake flapping on one device.

    Counts online/offline transitions per ``(scope, accel_id)`` in a
    sliding window; ``threshold`` transitions means the utilization
    signal is oscillating around the scaler's hysteresis band and the
    fleet is paying wake latency for nothing.
    """

    name: str
    window_ms: float = 200.0
    threshold: int = 4
    severity: str = "warn"
    scope: str | None = None

    kind = "park_wake_flap"

    def __post_init__(self):
        severity_rank(self.severity)
        _positive("window_ms", self.window_ms)
        _positive("threshold", self.threshold)

    def matches(self, scope, task=None, slo_ms=None):
        return self.scope is None or self.scope == scope
