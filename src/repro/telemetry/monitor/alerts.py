"""Typed alerts, incident grouping, and their JSONL round trip.

An :class:`Alert` is one rule or watchdog firing on the simulated
clock: it opens at the first observation instant its condition holds,
closes at the first later instant it stops holding (or at the run
horizon when :meth:`~repro.telemetry.monitor.TelemetryMonitor.finalize`
sweeps it shut), and carries *evidence* — span locators (``req:42`` on
an accelerator track, ``throttle`` on a budget lane) that tie the
firing back to the span log that explains it.

An :class:`Incident` groups overlapping alerts on one scope into a
single operational event with open/close instants, the worst member
severity, and a root cause (the earliest-opened member alert and its
evidence). :class:`IncidentReport` is the whole monitoring outcome of
one run — alerts, incidents, health scores — serializable to JSONL
(:meth:`IncidentReport.to_jsonl` / :meth:`IncidentReport.from_jsonl`,
lossless) and renderable on the existing ASCII timeline via
:meth:`IncidentReport.spans` (``alert`` / ``incident`` categories get
their own lanes next to the traced run).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import TelemetryError
from repro.telemetry.tracer import Span

#: Severity ladder, least to most urgent; incidents take their worst
#: member's rung.
SEVERITIES = ("warn", "ticket", "page")

_SEVERITY_RANK = {severity: i for i, severity in enumerate(SEVERITIES)}


def severity_rank(severity):
    """Position on the :data:`SEVERITIES` ladder (raises on unknowns)."""
    try:
        return _SEVERITY_RANK[severity]
    except KeyError:
        raise TelemetryError(
            f"unknown severity {severity!r}; expected one of "
            f"{SEVERITIES}") from None


@dataclass
class Alert:
    """One rule/watchdog firing over ``[opened_ms, closed_ms]``.

    ``closed_ms`` is None while the condition still holds; ``value`` /
    ``threshold`` snapshot the measurement that opened it (burn rate,
    event count, queue depth); ``labels`` is a sorted ``(key, value)``
    tuple so alert streams compare canonically; ``evidence`` is a tuple
    of span-locator dicts (``{"span": ..., "track": ..., "t_ms": ...}``)
    resolvable against the run's span log.
    """

    alert_id: int
    rule: str
    kind: str
    severity: str
    scope: str
    opened_ms: float
    closed_ms: float | None = None
    value: float = 0.0
    threshold: float = 0.0
    labels: tuple = ()
    evidence: tuple = ()

    def __post_init__(self):
        severity_rank(self.severity)

    @property
    def active(self):
        return self.closed_ms is None

    def duration_ms(self, end_ms=None):
        closed = self.closed_ms
        if closed is None:
            closed = self.opened_ms if end_ms is None else float(end_ms)
        return max(0.0, closed - self.opened_ms)

    def to_dict(self):
        row = {"alert_id": self.alert_id, "rule": self.rule,
               "kind": self.kind, "severity": self.severity,
               "scope": self.scope, "opened_ms": self.opened_ms,
               "closed_ms": self.closed_ms, "value": self.value,
               "threshold": self.threshold,
               "labels": [list(pair) for pair in self.labels]}
        if self.evidence:
            row["evidence"] = list(self.evidence)
        return row

    @classmethod
    def from_dict(cls, row):
        try:
            return cls(
                alert_id=int(row["alert_id"]), rule=row["rule"],
                kind=row["kind"], severity=row["severity"],
                scope=row["scope"],
                opened_ms=float(row["opened_ms"]),
                closed_ms=None if row.get("closed_ms") is None
                else float(row["closed_ms"]),
                value=float(row.get("value", 0.0)),
                threshold=float(row.get("threshold", 0.0)),
                labels=tuple(tuple(pair) for pair in
                             row.get("labels", ())),
                evidence=tuple(row.get("evidence", ())))
        except (KeyError, TypeError, ValueError) as exc:
            raise TelemetryError(f"malformed alert row {row!r}: {exc}")


@dataclass
class Incident:
    """Overlapping alerts on one scope, fused into one event."""

    incident_id: int
    scope: str
    opened_ms: float
    closed_ms: float | None
    severity: str
    alert_ids: tuple
    #: The earliest-opened member — the incident's probable root cause —
    #: as ``{"rule", "alert_id", "evidence"}`` for span linkage.
    root_cause: dict = field(default_factory=dict)

    def duration_ms(self, end_ms=None):
        closed = self.closed_ms
        if closed is None:
            closed = self.opened_ms if end_ms is None else float(end_ms)
        return max(0.0, closed - self.opened_ms)

    def to_dict(self):
        return {"incident_id": self.incident_id, "scope": self.scope,
                "opened_ms": self.opened_ms, "closed_ms": self.closed_ms,
                "severity": self.severity,
                "alert_ids": list(self.alert_ids),
                "root_cause": self.root_cause}

    @classmethod
    def from_dict(cls, row):
        try:
            return cls(
                incident_id=int(row["incident_id"]), scope=row["scope"],
                opened_ms=float(row["opened_ms"]),
                closed_ms=None if row.get("closed_ms") is None
                else float(row["closed_ms"]),
                severity=row["severity"],
                alert_ids=tuple(int(i) for i in row["alert_ids"]),
                root_cause=dict(row.get("root_cause", {})))
        except (KeyError, TypeError, ValueError) as exc:
            raise TelemetryError(
                f"malformed incident row {row!r}: {exc}")


def group_incidents(alerts, join_gap_ms=0.0, end_ms=None):
    """Fuse time-overlapping alerts per scope into incidents.

    Alerts on one scope whose ``[opened, closed]`` intervals overlap
    (or sit within ``join_gap_ms`` of each other) join one incident;
    still-open alerts extend to ``end_ms`` (or to their open instant
    when no horizon is given). Deterministic: scopes in sorted order,
    members by (opened_ms, alert_id), incident ids dense from 0.
    """
    if join_gap_ms < 0:
        raise TelemetryError("join_gap_ms must be non-negative")
    by_scope = {}
    for alert in alerts:
        by_scope.setdefault(alert.scope, []).append(alert)

    incidents = []
    for scope in sorted(by_scope):
        members = sorted(by_scope[scope],
                         key=lambda a: (a.opened_ms, a.alert_id))
        current = []
        current_end = None
        for alert in members:
            closed = alert.closed_ms
            if closed is None:
                closed = alert.opened_ms if end_ms is None \
                    else max(float(end_ms), alert.opened_ms)
            if current and alert.opened_ms <= current_end + join_gap_ms:
                current.append(alert)
                current_end = max(current_end, closed)
            else:
                if current:
                    incidents.append((scope, current, current_end))
                current = [alert]
                current_end = closed
        if current:
            incidents.append((scope, current, current_end))

    out = []
    for incident_id, (scope, members, closed) in enumerate(incidents):
        root = members[0]
        still_open = any(a.closed_ms is None for a in members)
        out.append(Incident(
            incident_id=incident_id, scope=scope,
            opened_ms=members[0].opened_ms,
            closed_ms=None if still_open and end_ms is None else closed,
            severity=max((a.severity for a in members),
                         key=severity_rank),
            alert_ids=tuple(a.alert_id for a in members),
            root_cause={"rule": root.rule, "alert_id": root.alert_id,
                        "evidence": list(root.evidence)}))
    return out


@dataclass
class IncidentReport:
    """The monitoring outcome of one run: alerts, incidents, health."""

    alerts: list
    incidents: list
    health: dict = field(default_factory=dict)  # scope -> score
    end_ms: float | None = None

    @property
    def num_alerts(self):
        return len(self.alerts)

    @property
    def num_incidents(self):
        return len(self.incidents)

    def worst_severity(self):
        if not self.alerts:
            return None
        return max((a.severity for a in self.alerts),
                   key=severity_rank)

    def summary(self):
        """JSON-friendly deterministic dump (the canonical stream)."""
        return {
            "end_ms": self.end_ms,
            "health": {scope: self.health[scope]
                       for scope in sorted(self.health)},
            "alerts": [a.to_dict() for a in self.alerts],
            "incidents": [i.to_dict() for i in self.incidents],
        }

    # -- timeline rendering ---------------------------------------------------------

    def spans(self):
        """Alert/incident lanes for :func:`~repro.telemetry.render_timeline`.

        One ``alert``-category span per alert on ``{scope}/alerts`` and
        one ``incident``-category span per incident on
        ``{scope}/incidents`` — concatenate with a traced run's spans
        to see firings lined up against the compute/queue/budget lanes
        that explain them.
        """
        rows = []
        for alert in self.alerts:
            dur = alert.duration_ms(self.end_ms)
            rows.append(Span(
                f"{alert.rule}", "alert", alert.opened_ms,
                dur if dur > 0 else None, f"{alert.scope}/alerts",
                args={"severity": alert.severity,
                      "value": alert.value,
                      "threshold": alert.threshold}))
        for incident in self.incidents:
            dur = incident.duration_ms(self.end_ms)
            rows.append(Span(
                f"incident:{incident.incident_id}", "incident",
                incident.opened_ms, dur if dur > 0 else None,
                f"{incident.scope}/incidents",
                args={"severity": incident.severity,
                      "alerts": len(incident.alert_ids),
                      "root": incident.root_cause.get("rule")}))
        return rows

    # -- JSONL round trip -----------------------------------------------------------

    def to_jsonl(self, path):
        """One typed JSON row per alert/incident (+ a header row).

        The row discriminator key is ``"row"`` — ``"kind"`` belongs to
        the alert payload (the rule kind that fired it).
        """
        with open(path, "w", encoding="utf-8") as f:
            header = {"row": "monitor", "end_ms": self.end_ms,
                      "health": {s: self.health[s]
                                 for s in sorted(self.health)}}
            f.write(json.dumps(header, sort_keys=True) + "\n")
            for alert in self.alerts:
                row = {"row": "alert"}
                row.update(alert.to_dict())
                f.write(json.dumps(row, sort_keys=True) + "\n")
            for incident in self.incidents:
                row = {"row": "incident"}
                row.update(incident.to_dict())
                f.write(json.dumps(row, sort_keys=True) + "\n")
        return 1 + len(self.alerts) + len(self.incidents)

    @classmethod
    def from_jsonl(cls, path):
        alerts, incidents, health, end_ms = [], [], {}, None
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise TelemetryError(
                        f"{path}:{lineno}: not a JSON row ({exc})")
                row_kind = row.get("row")
                if row_kind == "monitor":
                    end_ms = row.get("end_ms")
                    health = dict(row.get("health", {}))
                elif row_kind == "alert":
                    alerts.append(Alert.from_dict(row))
                elif row_kind == "incident":
                    incidents.append(Incident.from_dict(row))
                else:
                    raise TelemetryError(
                        f"{path}:{lineno}: unknown row type "
                        f"{row_kind!r}")
        return cls(alerts=alerts, incidents=incidents, health=health,
                   end_ms=end_ms)
