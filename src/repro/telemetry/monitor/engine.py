"""The monitor engine: windowed rule evaluation on the simulated clock.

:class:`TelemetryMonitor` is the control plane's state machine. The
cluster/fleet engines *feed* it read-only observations at the instants
things happen — completions, queue-depth samples, throttle/swap/scale
events — and it maintains sliding-window state per rule, opening a
typed :class:`~repro.telemetry.monitor.Alert` when a rule's condition
starts holding and closing it at the first observation where it stops.
Everything runs on the simulated clock and touches no simulator state,
so a monitored run is bit-identical to an unmonitored one and the
alert stream is bit-identical across the event and vector engines
(the feeds fire at corresponding commit points with identical floats).

Two deliberate semantics fall out of being event-driven rather than
timer-driven:

* windows only advance at observation instants — a stream that goes
  quiet keeps its last state until the next observation or
  :meth:`TelemetryMonitor.finalize` (which closes every active alert
  at the run horizon);
* the SLO burn-rate predicate is deadline-based
  (``finish > (arrival + target) + 1e-9``) on both engines, computed
  from the same float64 values, so the violation *count* entering a
  window is identical however the run was executed.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import TelemetryError
from repro.telemetry.metrics import DEFAULT_BUCKETS_MS, estimate_quantile
from repro.telemetry.monitor.alerts import (Alert, IncidentReport,
                                            group_incidents)
from repro.telemetry.monitor.rules import (BurnRateRule,
                                           LatencyQuantileRule,
                                           default_rules)
from repro.telemetry.monitor.watchdogs import (FlapRule, QueueDepthRule,
                                               SwapThrashRule,
                                               ThrottleStormRule)

#: Health deduction per active alert, by severity.
SEVERITY_PENALTY = {"warn": 0.1, "ticket": 0.25, "page": 0.5}

#: Span-locator evidence entries kept per alert.
EVIDENCE_MAX = 3

_BUCKETS = np.asarray(DEFAULT_BUCKETS_MS, dtype=np.float64)
_NBUCKETS = len(DEFAULT_BUCKETS_MS) + 1  # +Inf overflow


class _BurnState:
    """Fast+slow sliding (t, n, nv) windows for one rule on one stream."""

    __slots__ = ("rule", "akey", "fast", "slow", "fn", "fnv", "sn",
                 "snv")

    def __init__(self, rule, akey):
        self.rule = rule
        self.akey = akey  # the monitor's active-alert key, prebuilt
        self.fast = deque()
        self.slow = deque()
        self.fn = self.fnv = self.sn = self.snv = 0

    def observe(self, t, n, nv):
        """Returns (fires, fast_burn_multiple) after folding in (t, n, nv)."""
        rule = self.rule
        fast, slow = self.fast, self.slow
        entry = (t, n, nv)
        fast.append(entry)
        slow.append(entry)
        self.fn += n
        self.fnv += nv
        self.sn += n
        self.snv += nv
        cut = t - rule.fast_window_ms
        while fast[0][0] <= cut:
            _, en, env = fast.popleft()
            self.fn -= en
            self.fnv -= env
        cut = t - rule.slow_window_ms
        while slow[0][0] <= cut:
            _, en, env = slow.popleft()
            self.sn -= en
            self.snv -= env
        if self.fn < rule.min_samples or not self.sn:
            return False, 0.0
        budget = rule.error_budget
        fast_mult = (self.fnv / self.fn) / budget
        slow_mult = (self.snv / self.sn) / budget
        return (fast_mult >= rule.fast_burn
                and slow_mult >= rule.slow_burn), fast_mult


class _LatencyState:
    """One sliding latency window for one rule, evaluated in rank space.

    ``fires`` means exactly "the interpolated window quantile exceeds
    ``threshold_ms``" — but the full histogram is never built per
    batch. The estimator is piecewise-linear and increasing in rank,
    so its output passes the threshold precisely when the q-rank
    passes the threshold's fixed position inside its own bucket:

        q * n  >  below + frac * at

    with ``below`` the window count in buckets wholly at or under the
    threshold bucket's lower edge, ``at`` the count inside the
    threshold's bucket, and ``frac`` the threshold's static offset
    within it (the same inequality as ``estimate > threshold``,
    rearranged). Each batch therefore costs one two-edge bucketing;
    the full bucket vector and window max are only materialized — from
    the retained batch arrays — when an alert actually opens.

    ``q == 0`` (the estimate is a bucket lower edge, not a rank
    crossing) and thresholds past the last finite bucket edge (the
    overflow bucket's upper edge moves with the observed max) fall
    back to evaluating the estimator per batch; no stock rule hits
    either.
    """

    __slots__ = ("rule", "akey", "entries", "n", "below", "at",
                 "bins", "frac")

    def __init__(self, rule, akey):
        self.rule = rule
        self.akey = akey  # the monitor's active-alert key, prebuilt
        self.entries = deque()  # (t, latency_array, n, below, at)
        self.n = 0
        self.below = 0
        self.at = 0
        k = int(_BUCKETS.searchsorted(rule.threshold_ms, side="left"))
        if k >= _BUCKETS.size or rule.q == 0.0:
            self.bins = None
            self.frac = 0.0
        else:
            lower = 0.0 if k == 0 else float(_BUCKETS[k - 1])
            # -inf low edge: nothing lands "below" bucket 0.
            self.bins = np.asarray(
                [-np.inf if k == 0 else lower, float(_BUCKETS[k])])
            self.frac = ((rule.threshold_ms - lower)
                         / (float(_BUCKETS[k]) - lower))

    def observe(self, t, arr, n):
        """True iff the window quantile now exceeds the threshold,
        after folding in one batch of latencies (a float64 array)."""
        rule = self.rule
        entries = self.entries
        if self.bins is None:
            entries.append((t, arr, n, 0, 0))
            self.n += n
            cut = t - rule.window_ms
            while entries[0][0] <= cut:
                self.n -= entries.popleft()[2]
            if self.n < rule.min_samples:
                return False
            return self.quantile() > rule.threshold_ms
        small = np.bincount(self.bins.searchsorted(arr, side="left"),
                            minlength=3)
        nb = int(small[0])
        nk = int(small[1])
        entries.append((t, arr, n, nb, nk))
        self.n += n
        self.below += nb
        self.at += nk
        cut = t - rule.window_ms
        while entries[0][0] <= cut:
            _, _, en, eb, ek = entries.popleft()
            self.n -= en
            self.below -= eb
            self.at -= ek
        if self.n < rule.min_samples:
            return False
        return rule.q * self.n > self.below + self.at * self.frac

    def quantile(self):
        """The exact interpolated estimate over the current window."""
        window = np.concatenate([e[1] for e in self.entries])
        counts = np.bincount(
            _BUCKETS.searchsorted(window, side="left"),
            minlength=_NBUCKETS).tolist()
        hi = float(window.max()) if window.size else 0.0
        return estimate_quantile(DEFAULT_BUCKETS_MS, counts, self.n,
                                 self.rule.q, hi=hi)


class _CountWindow:
    """Sliding window of event instants (throttles, swaps, flaps)."""

    __slots__ = ("window_ms", "times")

    def __init__(self, window_ms):
        self.window_ms = window_ms
        self.times = deque()

    def add(self, t):
        self.times.append(t)
        return self.prune(t)

    def prune(self, t):
        times = self.times
        cut = t - self.window_ms
        while times and times[0] <= cut:
            times.popleft()
        return len(times)


def _decay_at(window, threshold, t):
    """First instant ``window``'s count can fall below ``threshold``.

    The window only changes when an event is added (which re-derives
    this), so between mutations the count decays on a known schedule:
    it drops below ``threshold`` exactly when the ``threshold``-th
    newest event ages out. With fewer than ``threshold`` events the
    count is already below — any tick at or after ``t`` may close.
    """
    times = window.times
    if len(times) < threshold:
        return t
    return times[-threshold] + window.window_ms


class TelemetryMonitor:
    """Deterministic alerting over the simulators' telemetry feeds.

    Construct with a rule tuple (:func:`default_rules` when omitted)
    and optionally a :class:`~repro.telemetry.MetricsRegistry` to
    receive ``health_score`` gauges; hand it to
    :class:`~repro.cluster.ClusterSimulator` /
    :class:`~repro.fleet.FleetOrchestrator` via their ``monitor=``
    argument. After the run, :meth:`finalize` closes open alerts at
    the horizon and :meth:`report` yields the
    :class:`~repro.telemetry.monitor.IncidentReport`.
    """

    def __init__(self, rules=None, registry=None, join_gap_ms=10.0):
        if join_gap_ms < 0:
            raise TelemetryError("join_gap_ms must be non-negative")
        self.rules = default_rules() if rules is None else tuple(rules)
        names = [r.name for r in self.rules]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise TelemetryError(f"duplicate rule names: {dupes}")
        self.registry = registry
        self.join_gap_ms = float(join_gap_ms)
        self._burn_rules = [r for r in self.rules
                            if isinstance(r, BurnRateRule)]
        self._lat_rules = [r for r in self.rules
                           if isinstance(r, LatencyQuantileRule)]
        self._throttle_rules = [r for r in self.rules
                                if isinstance(r, ThrottleStormRule)]
        self._queue_rules = [r for r in self.rules
                             if isinstance(r, QueueDepthRule)]
        self._swap_rules = [r for r in self.rules
                            if isinstance(r, SwapThrashRule)]
        self._flap_rules = [r for r in self.rules
                            if isinstance(r, FlapRule)]
        self._streams = {}    # (scope, task, slo) -> (burn, lat, labels)
        self._counts = {}     # (rule_name, key) -> _CountWindow
        self._above = {}      # (rule_name, scope) -> above_since | None
        self._active = {}     # (rule_name, key) -> Alert
        #: Count-window alerts awaiting decay, keyed like ``_active``,
        #: valued ``(alert, close_at_ms)`` — the earliest instant the
        #: window can have decayed below threshold, recomputed whenever
        #: the window gains an event. ``_watch_due`` caches the min of
        #: the close instants, so a tick with nothing due is a single
        #: float compare.
        self._watch = {}
        self._watch_due = float("inf")
        self._queue_matched = {}  # scope -> [(QueueDepthRule, key)]
        self._swap_cache = {}     # (scope, accel) -> [(rule, win, akey)]
        self._alerts = []
        self._scopes = set()
        self._devices = set()  # (scope, accel_id)
        self._last_ms = 0.0
        self._report = None

    # -- alert bookkeeping ----------------------------------------------------------

    def _open(self, rule, key, scope, t, value, labels=(), evidence=()):
        alert = Alert(
            alert_id=len(self._alerts), rule=rule.name, kind=rule.kind,
            severity=rule.severity, scope=scope, opened_ms=t,
            value=float(value), threshold=float(
                getattr(rule, "threshold_ms", None)
                or getattr(rule, "threshold", None)
                or getattr(rule, "depth", None)
                or getattr(rule, "fast_burn", 0.0)),
            labels=tuple(labels), evidence=tuple(evidence))
        self._active[(rule.name, key)] = alert
        self._alerts.append(alert)
        return alert

    def _close(self, rule_name, key, t):
        alert = self._active.pop((rule_name, key), None)
        if alert is not None:
            alert.closed_ms = t
            if self._watch.pop((rule_name, key), None) is not None:
                self._refresh_watch_due()

    def _watch_put(self, akey, alert, close_at):
        self._watch[akey] = (alert, close_at)
        self._refresh_watch_due()

    def _refresh_watch_due(self):
        watch = self._watch
        self._watch_due = (min(e[1] for e in watch.values())
                           if watch else float("inf"))

    def _touch(self, scope, t):
        self._scopes.add(scope)
        if t > self._last_ms:
            self._last_ms = t

    # -- feeds ----------------------------------------------------------------------

    def observe_completions(self, scope, task, slo_ms, t, n, nv,
                            latencies, viol_ids=()):
        """One batch of completions: ``n`` served, ``nv`` of them past
        deadline, with per-request ``latencies`` (time in system, ms)
        and the violators' request ids for evidence linkage.
        ``viol_ids`` may be a zero-arg callable returning the ids —
        they are only resolved if an alert actually opens, so a hot
        caller can defer the gather."""
        if t > self._last_ms:
            self._last_ms = t
        key = (scope, task, slo_ms)
        states = self._streams.get(key)
        if states is None:
            self._scopes.add(scope)
            burn = [_BurnState(r, (r.name, key))
                    for r in self._burn_rules
                    if r.matches(scope, task, slo_ms)]
            lat = [_LatencyState(r, (r.name, key))
                   for r in self._lat_rules
                   if r.matches(scope, task, slo_ms)]
            states = self._streams[key] = (
                burn, lat, (("slo_ms", slo_ms), ("task", task)))
        burn_states, lat_states, labels = states
        active_map = self._active
        for state in burn_states:
            fires, mult = state.observe(t, n, nv)
            active = state.akey in active_map
            if fires and not active:
                ids = viol_ids() if callable(viol_ids) else viol_ids
                evidence = tuple(
                    {"span": f"req:{int(rid)}", "t_ms": t}
                    for rid in list(ids)[:EVIDENCE_MAX])
                self._open(state.rule, key, scope, t, mult, labels,
                           evidence)
            elif active and not fires:
                self._close(state.rule.name, key, t)
        if lat_states:
            arr = latencies if isinstance(latencies, np.ndarray) \
                else np.asarray(latencies, dtype=np.float64)
            for state in lat_states:
                fires = state.observe(t, arr, n)
                active = state.akey in active_map
                if fires and not active:
                    rule = state.rule
                    self._open(rule, key, scope, t, state.quantile(),
                               labels,
                               ({"metric": "time_in_system_ms",
                                 "q": rule.q, "t_ms": t},))
                elif active and not fires:
                    self._close(state.rule.name, key, t)
        if active_map:
            self._tick_scope(scope, t)

    def observe_queue_depth(self, scope, t, depth):
        """Queue-depth sample (requests in closed, undispatched batches)."""
        if t > self._last_ms:
            self._last_ms = t
        matched = self._queue_matched.get(scope)
        if matched is None:
            self._scopes.add(scope)
            matched = self._queue_matched[scope] = [
                (r, (r.name, scope)) for r in self._queue_rules
                if r.matches(scope)]
        for rule, key in matched:
            if depth > rule.depth:
                since = self._above.get(key)
                if since is None:
                    since = self._above[key] = t
                if key not in self._active \
                        and t - since >= rule.sustain_ms:
                    self._open(rule, scope, scope, t, depth,
                               (("depth", depth),),
                               ({"span": "dispatch-wait",
                                 "track": f"{scope}/queue",
                                 "t_ms": t},))
            else:
                self._above[key] = None
                if key in self._active:
                    self._close(rule.name, scope, t)
        self._tick_scope(scope, t)

    def observe_throttle(self, scope, t, until_ms=None):
        """One budget throttle event (admission stalled until relief)."""
        self._touch(scope, t)
        for rule in self._throttle_rules:
            if not rule.matches(scope):
                continue
            key = (rule.name, scope)
            window = self._counts.get(key)
            if window is None:
                window = self._counts[key] = _CountWindow(rule.window_ms)
            count = window.add(t)
            if count >= rule.threshold and key not in self._active:
                self._open(rule, scope, scope, t, count, (),
                           ({"span": "throttle",
                             "track": f"{scope}/budget", "t_ms": t},))
            if key in self._active:
                self._watch_put(key, self._active[key],
                                _decay_at(window, rule.threshold, t))

    def observe_swap(self, scope, t, task, accel_id):
        """One weight swap on one device."""
        if t > self._last_ms:
            self._last_ms = t
        key = (scope, accel_id)
        cached = self._swap_cache.get(key)
        if cached is None:
            self._scopes.add(scope)
            self._devices.add(key)
            cached = self._swap_cache[key] = []
            for rule in self._swap_rules:
                if rule.matches(scope):
                    window = self._counts.setdefault(
                        (rule.name,) + key, _CountWindow(rule.window_ms))
                    cached.append((rule, window, (rule.name, key)))
        active = self._active
        for rule, window, akey in cached:
            count = window.add(t)
            if count >= rule.threshold and akey not in active:
                self._open(rule, key, scope, t, count,
                           (("accel", accel_id),),
                           ({"span": f"swap:{task}",
                             "track": f"{scope}/accel{accel_id}",
                             "t_ms": t},))
            if akey in active:
                self._watch_put(akey, active[akey],
                                _decay_at(window, rule.threshold, t))

    def observe_scale(self, scope, t, accel_id, action):
        """One autoscaler transition (``"park"`` or ``"wake"``)."""
        self._touch(scope, t)
        self._devices.add((scope, accel_id))
        for rule in self._flap_rules:
            if not rule.matches(scope):
                continue
            key = (scope, accel_id)
            window = self._counts.get((rule.name,) + key)
            if window is None:
                window = self._counts[(rule.name,) + key] = \
                    _CountWindow(rule.window_ms)
            count = window.add(t)
            akey = (rule.name, key)
            if count >= rule.threshold and akey not in self._active:
                self._open(rule, key, scope, t, count,
                           (("accel", accel_id),),
                           ({"span": f"{action}-device",
                             "track": f"{scope}/accel{accel_id}",
                             "t_ms": t},))
            if akey in self._active:
                self._watch_put(akey, self._active[akey],
                                _decay_at(window, rule.threshold, t))

    def _tick_scope(self, scope, t):
        """Give count-window watchdogs in this scope a chance to close."""
        if t < self._watch_due:
            return
        due = [wkey for wkey, (alert, close_at) in self._watch.items()
               if close_at <= t and alert.scope == scope]
        for rule_name, key in due:
            self._close(rule_name, key, t)

    # -- span-log replay ------------------------------------------------------------

    def observe_spans(self, spans):
        """Feed a recorded span log (offline / ``--replay`` mode).

        Reconstructs the watchdog feeds from span names — ``throttle``,
        ``swap:*``, ``park-device``/``wake-device`` instants, and queue
        depth from ``window`` closes (+size) against ``dispatch-wait``
        ends (−size). SLO burn rules get no signal here: span logs are
        batch-granular on the vector engine and carry no per-request
        deadline outcome, so burn/latency rules need the live feeds.
        Spans may be :class:`~repro.telemetry.Span` objects, dict rows,
        or a JSONL path (anything
        :func:`repro.telemetry.render_timeline` accepts).
        """
        from repro.telemetry.timeline import _spans_of
        events = []  # (t, seq, feedfn, args)
        for seq, span in enumerate(_spans_of(spans)):
            scope = span.scope
            name = span.name
            cat = span.cat
            if cat == "budget" and name == "throttle":
                events.append((span.start_ms, seq,
                               self.observe_throttle, (scope,)))
            elif cat == "swap" and name.startswith("swap:"):
                accel = _accel_of(span.track)
                if accel is not None:
                    events.append((span.start_ms, seq, self.observe_swap,
                                   (scope, name[5:], accel)))
            elif cat == "scale" and name in ("park-device",
                                             "wake-device"):
                accel = _accel_of(span.track)
                if accel is not None:
                    events.append((span.start_ms, seq,
                                   self.observe_scale,
                                   (scope, accel, name.split("-")[0])))
            elif cat == "window" and span.dur_ms is not None:
                size = (span.args or {}).get("size", 0)
                events.append((span.end_ms, seq, "_queue",
                               (scope, int(size))))
            elif cat == "queue" and name == "dispatch-wait":
                size = (span.args or {}).get("size", 0)
                events.append((span.end_ms, seq, "_queue",
                               (scope, -int(size))))
        events.sort(key=lambda e: (e[0], e[1]))
        depths = {}
        for t, _seq, feed, fargs in events:
            if feed == "_queue":
                scope, delta = fargs
                depth = depths.get(scope, 0) + delta
                depths[scope] = depth
                self.observe_queue_depth(scope, t, depth)
            else:
                scope = fargs[0]
                feed(scope, t, *fargs[1:])
        return len(events)

    # -- health ---------------------------------------------------------------------

    def health(self, scope):
        """Scope health in [0, 1]: 1.0 minus active-alert penalties."""
        penalty = 0.0
        for alert in self._active.values():
            if alert.scope == scope:
                penalty += SEVERITY_PENALTY[alert.severity]
        return max(0.0, 1.0 - penalty)

    def device_health(self, scope, accel_id):
        """Device health: scope-wide alerts plus this device's own."""
        penalty = 0.0
        target = ("accel", accel_id)
        for alert in self._active.values():
            if alert.scope != scope:
                continue
            accel_labels = [pair for pair in alert.labels
                            if pair[0] == "accel"]
            if not accel_labels or target in accel_labels:
                penalty += SEVERITY_PENALTY[alert.severity]
        return max(0.0, 1.0 - penalty)

    def sample_health(self, t):
        """Write ``health_score`` gauges for every scope/device seen."""
        if self.registry is None:
            return
        for scope in sorted(self._scopes):
            self.registry.gauge("health_score", scope=scope).set(
                t, self.health(scope))
        for scope, accel_id in sorted(self._devices):
            self.registry.gauge(
                "health_score", scope=scope,
                accel=f"accel{accel_id}").set(
                    t, self.device_health(scope, accel_id))

    # -- lifecycle ------------------------------------------------------------------

    @property
    def num_alerts(self):
        return len(self._alerts)

    def active_alerts(self):
        return sorted(self._active.values(),
                      key=lambda a: a.alert_id)

    def finalize(self, end_ms=None):
        """Close every active alert at the horizon; freeze the report.

        The report's health dict (and the final ``health_score`` gauge
        sample) snapshots the *horizon* state — alerts still active at
        ``end_ms`` count against it — before the sweep closes them.
        """
        end = self._last_ms if end_ms is None else float(end_ms)
        if end > self._last_ms:
            self._last_ms = end
        health = {scope: self.health(scope)
                  for scope in sorted(self._scopes)}
        self.sample_health(end)
        for alert in list(self._active.values()):
            alert.closed_ms = end
        self._active.clear()
        self._watch.clear()
        self._watch_due = float("inf")
        self._above.clear()
        self._report = IncidentReport(
            alerts=list(self._alerts),
            incidents=group_incidents(self._alerts, self.join_gap_ms,
                                      end_ms=end),
            health=health,
            end_ms=end)
        return self._report

    def report(self):
        """The :class:`IncidentReport` (finalizing at the last instant
        seen if :meth:`finalize` has not run yet)."""
        if self._report is None:
            return self.finalize()
        return self._report


def _accel_of(track):
    """Device index from an ``"{scope}/accelN"`` track, else None."""
    slash = track.rfind("/accel")
    if slash < 0:
        return None
    try:
        return int(track[slash + 6:])
    except ValueError:
        return None
