"""Deterministic SLO monitoring over the telemetry streams.

The observability *control plane*: where :mod:`repro.telemetry`
records what happened, this package watches it happen — multi-window
SLO burn-rate rules and anomaly watchdogs evaluated on the simulated
clock, typed :class:`Alert` streams grouped into :class:`Incident`
reports with span-linked root causes, and per-site/per-device health
scores the fleet layer can optionally subscribe to. Attach a
:class:`TelemetryMonitor` via the ``monitor=`` argument of
:class:`~repro.cluster.ClusterSimulator` or
:class:`~repro.fleet.FleetOrchestrator`; it is strictly read-only, so
monitored reports stay bit-identical to unmonitored ones and the
alert stream is bit-identical across the event and vector engines.

``python -m repro.telemetry.monitor --smoke`` is the CI gate;
``--replay spans.jsonl`` re-runs the watchdogs over a recorded span
log, ``--rules rules.json`` loads a custom rule set, and
``--openmetrics`` renders a registry in Prometheus text format.
"""

from repro.telemetry.monitor.alerts import (
    SEVERITIES,
    Alert,
    Incident,
    IncidentReport,
    group_incidents,
    severity_rank,
)
from repro.telemetry.monitor.engine import (
    EVIDENCE_MAX,
    SEVERITY_PENALTY,
    TelemetryMonitor,
)
from repro.telemetry.monitor.rules import (
    BurnRateRule,
    LatencyQuantileRule,
    default_rules,
    parse_rule,
    parse_rules,
    rule_to_dict,
)
from repro.telemetry.monitor.watchdogs import (
    FlapRule,
    QueueDepthRule,
    SwapThrashRule,
    ThrottleStormRule,
)

__all__ = [
    "EVIDENCE_MAX",
    "SEVERITIES",
    "SEVERITY_PENALTY",
    "Alert",
    "BurnRateRule",
    "FlapRule",
    "Incident",
    "IncidentReport",
    "LatencyQuantileRule",
    "QueueDepthRule",
    "SwapThrashRule",
    "TelemetryMonitor",
    "ThrottleStormRule",
    "default_rules",
    "group_incidents",
    "parse_rule",
    "parse_rules",
    "rule_to_dict",
    "severity_rank",
]
