"""Sim-clock span tracing for the serving/cluster/energy/fleet stack.

Every timestamp a :class:`Tracer` records comes off the *simulated*
clock (milliseconds on the event loop), never the wall clock — a traced
run is therefore exactly as deterministic as an untraced one, and two
runs of the same trace produce bit-identical span logs. Tracing is
strictly read-only observation: hooks fire after the simulator has
already committed a state change, so a traced report is bit-identical
to an untraced one (enforced by ``tests/telemetry`` and the
``python -m repro.telemetry --smoke`` gate).

The span model is deliberately flat: a :class:`Span` is one named
interval (or instant, ``dur_ms=None``) on one *track*. Tracks are
``"scope/lane"`` strings — the scope is the cluster or fleet site
(``"cluster"``, ``"edge-a"``, ``"fleet"``), the lane a device, batch
former, queue, budget or network leg within it — and become
process/thread rows in the Chrome trace export
(:mod:`repro.telemetry.export`).

Energy is first-class: any span may carry ``energy_mj``, and the tracer
maintains a compensated (Kahan) per-``(scope, category)`` rollup as it
emits, so :func:`reconcile_cluster` / :func:`reconcile_fleet` can hold
the traced energy against the run's
:class:`~repro.energy.EnergyReport` / fleet ledgers at 1e-9 without
re-reading a single span — turning every traced run into an end-to-end
ledger audit, even after spans have been streamed out to disk.

Memory is bounded for million-request replays: construct the tracer
with ``max_spans`` + ``spill_path`` and every time the in-memory buffer
fills it is flushed to a JSONL span log (the same schema
:func:`repro.telemetry.export.read_spans_jsonl` loads), keeping RSS
flat while :meth:`Tracer.iter_spans` still replays the complete log —
spilled prefix first, live tail after.

The default for every instrumented subsystem is :data:`NULL_TRACER`, a
shared :class:`NullTracer` whose ``enabled`` flag lets hot paths skip
even argument construction (``if tracer.enabled: ...``) — an untraced
run pays one attribute test per hook site and allocates nothing.
"""

from __future__ import annotations

import json

from repro.errors import TelemetryError

#: Span categories whose ``energy_mj`` the ledger reconciliation audits.
#: They mirror the four columns of a
#: :class:`~repro.energy.DeviceEnergyBreakdown`; every other category
#: ("window", "queue", "budget", "route", "net", "scale", ...) is
#: annotation only and never enters the energy identity.
ENERGY_CATEGORIES = ("compute", "swap", "idle", "transition")


def jsonable_args(args):
    """``args`` with any numpy columns converted to plain lists.

    The vector engine attaches its plan columns (member ids, arrival
    and finish instants) to hot-path spans as ndarrays so the traced
    replay never pays per-member scalar boxing; every serialization
    boundary funnels through here instead. Duck-typed on ``tolist`` so
    this module stays numpy-free.
    """
    if any(hasattr(value, "tolist") for value in args.values()):
        return {key: value.tolist() if hasattr(value, "tolist")
                else value for key, value in args.items()}
    return args


class Span:
    """One traced interval (or instant) on one track.

    ``dur_ms=None`` marks an instant event (Chrome phase ``"i"``);
    otherwise the span covers ``[start_ms, start_ms + dur_ms]`` (phase
    ``"X"``). ``energy_mj`` may be negative — refunds (a preemption
    handing back a mid-swap charge) are emitted as negative-energy
    instants so category sums stay exact.
    """

    __slots__ = ("name", "cat", "start_ms", "dur_ms", "track",
                 "energy_mj", "args")

    def __init__(self, name, cat, start_ms, dur_ms, track,
                 energy_mj=0.0, args=None):
        self.name = name
        self.cat = cat
        self.start_ms = start_ms
        self.dur_ms = dur_ms
        self.track = track
        self.energy_mj = energy_mj
        self.args = args

    @property
    def end_ms(self):
        return self.start_ms + (self.dur_ms or 0.0)

    @property
    def scope(self):
        """The track's leading component (cluster / site / fleet)."""
        track = self.track
        slash = track.find("/")
        return track if slash < 0 else track[:slash]

    def to_dict(self):
        row = {"name": self.name, "cat": self.cat,
               "start_ms": self.start_ms, "track": self.track}
        if self.dur_ms is not None:
            row["dur_ms"] = self.dur_ms
        if self.energy_mj:
            row["energy_mj"] = self.energy_mj
        if self.args:
            row["args"] = jsonable_args(self.args)
        return row

    @classmethod
    def from_dict(cls, row):
        try:
            return cls(row["name"], row["cat"], float(row["start_ms"]),
                       None if row.get("dur_ms") is None
                       else float(row["dur_ms"]),
                       row["track"],
                       energy_mj=float(row.get("energy_mj", 0.0)),
                       args=row.get("args"))
        except (KeyError, TypeError, ValueError) as exc:
            raise TelemetryError(f"malformed span row {row!r}: {exc}")

    def __repr__(self):
        dur = "i" if self.dur_ms is None else f"{self.dur_ms:.3f}ms"
        return (f"Span({self.cat}/{self.name} @{self.start_ms:.3f} "
                f"{dur} on {self.track})")


class NullTracer:
    """The zero-cost default: every hook is a no-op.

    ``enabled`` is False so instrumented code can skip argument
    construction entirely; the methods still exist so a tracer can be
    passed around without None checks.
    """

    enabled = False

    def span(self, name, cat, start_ms, dur_ms, track,
             energy_mj=0.0, args=None):
        return None

    def instant(self, name, cat, ts_ms, track, energy_mj=0.0, args=None):
        return None

    def extend_rows(self, rows):
        return None

    def flush(self):
        return 0

    def close(self):
        return None


#: The shared do-nothing tracer every subsystem defaults to.
NULL_TRACER = NullTracer()


class Tracer:
    """Collects spans on the simulated clock, with bounded memory.

    ``max_spans`` caps the in-memory buffer; crossing it streams the
    buffered spans to ``spill_path`` as JSONL and clears the buffer
    (``max_spans`` therefore requires ``spill_path``). The per-(scope,
    category) energy rollup is maintained at emit time with Kahan
    compensation, so it stays exact to ~1 ulp regardless of how many
    million spans flowed through — and survives spilling.
    """

    enabled = True

    def __init__(self, max_spans=None, spill_path=None):
        if max_spans is not None:
            if max_spans < 1:
                raise TelemetryError("max_spans must be >= 1")
            if spill_path is None:
                raise TelemetryError(
                    "max_spans without spill_path would drop spans; "
                    "give the tracer a JSONL path to stream into")
        self.max_spans = max_spans
        self.spill_path = spill_path
        # Hot-path storage is plain tuples, not Span objects: a traced
        # 100k-request replay emits tens of thousands of spans inside a
        # sub-second simulation, so emission must stay well under a
        # microsecond. Spans materialize lazily on every read path.
        # Row shape: (name, cat, start_ms, dur_ms, track, energy_mj,
        # args), with dur_ms None for instants.
        self._rows = []
        self._spill_file = None
        self.emitted = 0
        self.spilled = 0
        # (scope, cat) -> [sum_mj, kahan_compensation]
        self._rollup = {}
        # track -> scope; memoized so hot emits don't re-split strings.
        self._scopes = {}

    # -- emission -----------------------------------------------------------------

    def span(self, name, cat, start_ms, dur_ms, track,
             energy_mj=0.0, args=None):
        """Record one interval covering ``[start_ms, start_ms+dur_ms]``."""
        if energy_mj:
            energy_mj = float(energy_mj)
            scope = self._scopes.get(track)
            if scope is None:
                slash = track.find("/")
                scope = self._scopes[track] = \
                    track if slash < 0 else track[:slash]
            cell = self._rollup.get((scope, cat))
            if cell is None:
                cell = self._rollup[(scope, cat)] = [0.0, 0.0]
            # Kahan: the compensation keeps a million small terms from
            # drifting the 1e-9 ledger audit.
            y = energy_mj - cell[1]
            t = cell[0] + y
            cell[1] = (t - cell[0]) - y
            cell[0] = t
        self._rows.append((name, cat, float(start_ms), float(dur_ms),
                           track, energy_mj, args))
        self.emitted += 1
        if self.max_spans is not None \
                and len(self._rows) >= self.max_spans:
            self.flush()

    def instant(self, name, cat, ts_ms, track, energy_mj=0.0, args=None):
        """Record one instant event (``dur_ms=None``)."""
        if energy_mj:
            energy_mj = float(energy_mj)
            scope = self._scopes.get(track)
            if scope is None:
                slash = track.find("/")
                scope = self._scopes[track] = \
                    track if slash < 0 else track[:slash]
            cell = self._rollup.get((scope, cat))
            if cell is None:
                cell = self._rollup[(scope, cat)] = [0.0, 0.0]
            y = energy_mj - cell[1]
            t = cell[0] + y
            cell[1] = (t - cell[0]) - y
            cell[0] = t
        self._rows.append((name, cat, float(ts_ms), None, track,
                           energy_mj, args))
        self.emitted += 1
        if self.max_spans is not None \
                and len(self._rows) >= self.max_spans:
            self.flush()

    def extend_rows(self, rows):
        """Bulk emission of pre-built row tuples (the vector-engine path).

        Each row is ``(name, cat, start_ms, dur_ms, track, energy_mj,
        args)`` — exactly what :meth:`span` / :meth:`instant` would
        store, with timestamps already plain floats (the caller's
        responsibility; array-backed engines hand over their own
        float64 scalars). Amortizes the per-call overhead when a replay
        engine reconstructs tens of thousands of batch-granular spans
        from its plan in one pass; the Kahan rollup is maintained
        row-by-row, so reconciliation semantics match per-span emission
        exactly.
        """
        scopes = self._scopes
        rollup = self._rollup
        for row in rows:
            energy_mj = row[5]
            if energy_mj:
                track = row[4]
                cat = row[1]
                scope = scopes.get(track)
                if scope is None:
                    slash = track.find("/")
                    scope = scopes[track] = \
                        track if slash < 0 else track[:slash]
                cell = rollup.get((scope, cat))
                if cell is None:
                    cell = rollup[(scope, cat)] = [0.0, 0.0]
                y = energy_mj - cell[1]
                t = cell[0] + y
                cell[1] = (t - cell[0]) - y
                cell[0] = t
        self._rows.extend(rows)
        self.emitted += len(rows)
        if self.max_spans is not None \
                and len(self._rows) >= self.max_spans:
            self.flush()

    # -- reading back -------------------------------------------------------------

    def spans(self):
        """The in-memory (not yet spilled) spans, emission-ordered.

        Materialized fresh from the tuple store on every call — treat
        the result as a snapshot, not a live view.
        """
        return [Span(name, cat, start_ms, dur_ms, track,
                     energy_mj=energy_mj, args=args)
                for name, cat, start_ms, dur_ms, track, energy_mj, args
                in self._rows]

    def iter_spans(self):
        """Every span emitted so far: spilled prefix, then live tail.

        Flushes pending writes first so the spilled file is complete,
        then streams it back row by row — the complete log is available
        without ever holding it in memory at once.
        """
        if self._spill_file is not None:
            self._spill_file.flush()
        if self.spill_path is not None and self.spilled:
            with open(self.spill_path, encoding="utf-8") as f:
                for line in f:
                    line = line.strip()
                    if line:
                        yield Span.from_dict(json.loads(line))
        for name, cat, start_ms, dur_ms, track, energy_mj, args \
                in self._rows:
            yield Span(name, cat, start_ms, dur_ms, track,
                       energy_mj=energy_mj, args=args)

    # -- energy rollup ------------------------------------------------------------

    def energy_mj(self, cat=None, scope=None):
        """Rolled-up span energy, filtered by category and/or scope."""
        total = comp = 0.0
        for (sc, ct), cell in self._rollup.items():
            if cat is not None and ct != cat:
                continue
            if scope is not None and sc != scope:
                continue
            y = cell[0] - comp
            t = total + y
            comp = (t - total) - y
            total = t
        return total

    def rollup(self):
        """``{scope: {category: mJ}}`` over everything emitted so far."""
        out = {}
        for (scope, cat), cell in sorted(self._rollup.items()):
            out.setdefault(scope, {})[cat] = cell[0]
        return out

    # -- spilling -----------------------------------------------------------------

    def flush(self):
        """Stream the in-memory buffer to ``spill_path``; returns count."""
        if not self._rows or self.spill_path is None:
            return 0
        if self._spill_file is None:
            self._spill_file = open(self.spill_path, "w",
                                    encoding="utf-8")
        # Serialized straight from the tuple store (dict keys in fixed
        # insertion order, one buffered write per flush) — the spill is
        # on the traced run's clock, so it gets the same treatment as
        # emission.
        dumps = json.dumps
        lines = []
        for name, cat, start_ms, dur_ms, track, energy_mj, args \
                in self._rows:
            row = {"name": name, "cat": cat, "start_ms": start_ms,
                   "track": track}
            if dur_ms is not None:
                row["dur_ms"] = dur_ms
            if energy_mj:
                row["energy_mj"] = energy_mj
            if args:
                row["args"] = jsonable_args(args)
            lines.append(dumps(row))
        lines.append("")
        self._spill_file.write("\n".join(lines))
        count = len(self._rows)
        self.spilled += count
        self._rows = []
        return count

    def close(self):
        """Flush and close the spill file (idempotent)."""
        self.flush()
        if self._spill_file is not None:
            self._spill_file.close()
            self._spill_file = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


# -- ledger reconciliation ---------------------------------------------------------


def _check_gap(label, traced, ledger, tol):
    gap = abs(traced - ledger)
    if gap > tol:
        raise TelemetryError(
            f"span energy rollup diverges from the ledger on {label}: "
            f"traced {traced:.9f} mJ vs ledger {ledger:.9f} mJ "
            f"(gap {gap:.3e}, tol {tol:g})")


def reconcile_cluster(tracer, report, scope="cluster", tol=1e-9):
    """Audit a traced cluster run against its energy ledgers.

    The traced compute/swap/idle/transition rollups for ``scope`` must
    match the run's :class:`~repro.energy.EnergyReport` columns — which
    themselves reconcile against the serving aggregates — all within
    ``tol``. Raises :class:`~repro.errors.TelemetryError` on any gap;
    returns True otherwise.
    """
    energy = report.energy
    energy.reconcile(report.serving, tol=tol)
    ledger = {"compute": energy.compute_mj, "swap": energy.swap_mj,
              "idle": energy.idle_mj, "transition": energy.transition_mj}
    for cat in ENERGY_CATEGORIES:
        _check_gap(f"{scope}/{cat}", tracer.energy_mj(cat=cat,
                                                      scope=scope),
                   ledger[cat], tol)
    return True


def reconcile_fleet(tracer, fleet_report, tol=1e-9):
    """Audit a traced fleet run against every ledger level at once.

    Per site: the traced category rollups match the site's cluster
    energy report (:func:`reconcile_cluster` per scope). Fleet-wide:
    the summed traced energy matches ``FleetReport.total_energy_mj``,
    which :meth:`~repro.fleet.FleetReport.reconcile` has already tied
    to the per-site ledgers. Raises on any gap; returns True.
    """
    fleet_report.reconcile(tol=tol)
    traced_total = 0.0
    for outcome in fleet_report.sites:
        reconcile_cluster(tracer, outcome.report, scope=outcome.site_id,
                          tol=tol)
        for cat in ENERGY_CATEGORIES:
            traced_total += tracer.energy_mj(cat=cat,
                                            scope=outcome.site_id)
    _check_gap("fleet total", traced_total, fleet_report.total_energy_mj,
               max(tol, tol * len(fleet_report.sites)))
    return True
