"""Text rendering of a traced run: ASCII timeline + metric summary.

The terminal-native counterpart of the Perfetto export: given a span
log (a :class:`~repro.telemetry.Tracer`, a list of spans or a JSONL
path), :func:`render_timeline` draws one fixed-width lane per track —
each character cell is a time bucket, glyphed by the dominant span
category inside it — and :func:`render_summary` tabulates per-track
occupancy/energy plus the per-category energy rollup. Deterministic by
construction: tracks render in sorted order and buckets resolve
category collisions by a fixed priority.

Glyph legend (priority order — the highest-priority category occupying
a bucket wins the cell):

``#`` compute   ``S`` swap   ``^`` DVFS transition   ``~`` queued
``=`` batch window open   ``>`` network leg   ``!`` budget throttle
``.`` idle / standby leakage
"""

from __future__ import annotations

import math

from repro.telemetry.export import _spans_of
from repro.utils import format_table

#: Rendering priority (first wins a contested bucket) and glyphs.
CATEGORY_GLYPHS = (
    ("alert", "A"),
    ("incident", "I"),
    ("compute", "#"),
    ("swap", "S"),
    ("transition", "^"),
    ("budget", "!"),
    ("queue", "~"),
    ("window", "="),
    ("net", ">"),
    ("preempt", "x"),
    ("scale", "*"),
    ("idle", "."),
)
_PRIORITY = {cat: i for i, (cat, _) in enumerate(CATEGORY_GLYPHS)}
_GLYPH = dict(CATEGORY_GLYPHS)


def _span_rows(source):
    spans = list(_spans_of(source))
    if not spans:
        return spans, 0.0, 0.0
    t0 = min(s.start_ms for s in spans)
    t1 = max(s.end_ms for s in spans)
    return spans, t0, t1


def render_timeline(source, width=72, max_tracks=32):
    """One glyph lane per track over the run's [first, last] interval."""
    spans, t0, t1 = _span_rows(source)
    if not spans:
        return "(no spans)"
    horizon = max(t1 - t0, 1e-9)
    tracks = sorted({s.track for s in spans})
    clipped = len(tracks) > max_tracks
    tracks = tracks[:max_tracks]
    lanes = {track: [" "] * width for track in tracks}
    priority = [[len(CATEGORY_GLYPHS)] * width for _ in tracks]
    index = {track: i for i, track in enumerate(tracks)}

    for span in spans:
        lane = lanes.get(span.track)
        if lane is None:
            continue
        rank = _PRIORITY.get(span.cat, len(CATEGORY_GLYPHS) - 1)
        glyph = _GLYPH.get(span.cat, "?")
        lo = int((span.start_ms - t0) / horizon * width)
        hi = int(math.ceil((span.end_ms - t0) / horizon * width))
        lo = min(max(lo, 0), width - 1)
        hi = min(max(hi, lo + 1), width)
        row = priority[index[span.track]]
        for cell in range(lo, hi):
            if rank < row[cell]:
                row[cell] = rank
                lane[cell] = glyph

    label_width = max(len(t) for t in tracks)
    lines = [f"timeline {t0:.3f} .. {t1:.3f} ms "
             f"({horizon:.3f} ms across {width} cells)"]
    lines += [f"{track.ljust(label_width)} |{''.join(lanes[track])}|"
              for track in tracks]
    if clipped:
        lines.append("... (more tracks clipped; raise max_tracks)")
    legend = "  ".join(f"{glyph}={cat}" for cat, glyph in CATEGORY_GLYPHS)
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def render_summary(source):
    """Per-track and per-category tables over a span log."""
    spans, t0, t1 = _span_rows(source)
    if not spans:
        return "(no spans)"
    per_track = {}
    per_cat = {}
    for span in spans:
        row = per_track.setdefault(span.track,
                                   {"spans": 0, "busy_ms": 0.0,
                                    "energy_mj": 0.0})
        row["spans"] += 1
        row["energy_mj"] += span.energy_mj
        if span.dur_ms is not None and span.cat in ("compute", "swap"):
            row["busy_ms"] += span.dur_ms
        cat = per_cat.setdefault(span.cat, {"spans": 0, "ms": 0.0,
                                            "energy_mj": 0.0})
        cat["spans"] += 1
        cat["ms"] += span.dur_ms or 0.0
        cat["energy_mj"] += span.energy_mj

    horizon = max(t1 - t0, 1e-9)
    track_rows = [
        [track, str(row["spans"]), f"{row['busy_ms']:.3f}",
         f"{100.0 * row['busy_ms'] / horizon:.1f}%",
         f"{row['energy_mj']:.6f}"]
        for track, row in sorted(per_track.items())
    ]
    cat_rows = [
        [cat, str(row["spans"]), f"{row['ms']:.3f}",
         f"{row['energy_mj']:.6f}"]
        for cat, row in sorted(per_cat.items())
    ]
    return "\n\n".join([
        format_table(["Track", "Spans", "Busy (ms)", "Busy %",
                      "Energy (mJ)"], track_rows,
                     title=f"Tracks — {len(spans)} spans over "
                           f"{horizon:.3f} ms"),
        format_table(["Category", "Spans", "Total (ms)", "Energy (mJ)"],
                     cat_rows, title="Categories"),
    ])


def render_metrics(registry):
    """Tabulate a :class:`~repro.telemetry.MetricsRegistry` dump."""
    rows = []
    for name, labels, instrument in registry.instruments():
        label_str = ",".join(f"{k}={v}" for k, v in labels)
        summary = instrument.summary()
        kind = summary.pop("type")
        detail = ", ".join(
            f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
            for k, v in summary.items() if not isinstance(v, dict))
        rows.append([name, label_str or "-", kind, detail])
    if not rows:
        return "(no metrics)"
    return format_table(["Metric", "Labels", "Type", "Summary"], rows,
                        title="Metrics")
