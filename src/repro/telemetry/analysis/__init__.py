"""Trace analysis & attribution over the telemetry span streams.

Where :mod:`repro.telemetry` records a run, this package *explains*
it. Everything consumes the same span sources the exporters accept —
a live :class:`~repro.telemetry.Tracer`, an iterable of spans, or a
JSONL span log (spilled or written) — and every result is
bit-identical no matter which source or cluster engine produced the
spans:

* :func:`analyze` stitches **per-request causal journeys** (ordered
  defer/ingress/window/queue/throttle/swap/serial/compute/egress
  legs) whose durations tile time-in-system exactly, with per-category
  energy attribution that reconciles against the run's energy ledgers
  at 1e-9 (:meth:`TraceAnalysis.reconcile`);
* :func:`hot_paths` / :func:`flamegraph_lines` /
  :func:`write_flamegraph` roll journeys up by (task, SLO class,
  mode, hw) and export collapsed stacks (speedscope /
  ``flamegraph.pl``);
* :func:`render_waterfall` / :func:`waterfall_json` draw one journey's
  latency/energy waterfall (ASCII + JSON);
* :func:`diff_runs` aligns two replays of the same trace and emits a
  typed, JSON-round-tripping :class:`RegressionReport` attributing
  the p50/p99/violation/joule deltas to queueing vs compute vs swap
  vs throttle vs RTT.

``python -m repro.telemetry.analysis`` drives all of it from the
command line (``--journeys``, ``--critical-path``, ``--flame``,
``--waterfall``, ``--diff A B``, ``--smoke``).
"""

from repro.telemetry.analysis.diff import (ENERGY_CATS, GROUPS,
                                           RegressionReport, diff_runs)
from repro.telemetry.analysis.journeys import (LEG_GROUPS, LEG_ORDER,
                                               Journey, Leg,
                                               TraceAnalysis, analyze)
from repro.telemetry.analysis.profile import (flamegraph_lines,
                                              hot_paths,
                                              render_hot_paths,
                                              write_flamegraph)
from repro.telemetry.analysis.waterfall import (render_waterfall,
                                                waterfall_json)

__all__ = [
    "ENERGY_CATS",
    "GROUPS",
    "Journey",
    "Leg",
    "LEG_GROUPS",
    "LEG_ORDER",
    "RegressionReport",
    "TraceAnalysis",
    "analyze",
    "diff_runs",
    "flamegraph_lines",
    "hot_paths",
    "render_hot_paths",
    "render_waterfall",
    "waterfall_json",
    "write_flamegraph",
]
