"""Per-request causal journeys stitched from a span stream.

The tracer (PR 7) records *what happened where*; this module answers
*why a request took as long — and burned as much — as it did*. It
consumes any span source the exporters accept (a live
:class:`~repro.telemetry.Tracer`, an iterable of spans, or a JSONL
span-log path, spilled or written) and rebuilds every request's
ordered **legs**:

``defer → ingress → window → queue/throttle → swap → serial →
compute → egress``

* ``defer``     — fleet front-end shaping delay before routing;
* ``ingress``   — the RTT/2 network leg to the site;
* ``window``    — batch-former wait (member arrival to window close);
* ``queue``     — dispatch wait (window close / requeue to placement);
* ``throttle``  — the slice of the dispatch wait spent under an
  energy-budget throttle (carved out by overlap with the budget
  track's throttle spans);
* ``swap``      — encoder weight residency switch (carries the
  member's equal share of the batch's net swap energy);
* ``serial``    — on-device wait for earlier batch members (sentences
  execute back-to-back);
* ``preempted`` — wall-clock lost to an attempt that was evicted
  before this member's sentence completed (EDF preemption);
* ``compute``   — the member's own sentence (carries its exact priced
  energy);
* ``egress``    — the RTT/2 response leg back to the front-end.

Rail transitions never occupy wall-clock (the device models charge
them as energy-only instants that do not perturb the schedule), so
they carry no leg; their joules surface in the attribution table as
per-scope unattributed ``transition`` energy.

Every leg boundary is anchored on a float the emitting engine itself
produced (window-close = the first dispatch-wait span's start,
swap-end = the compute span's base, completion = the ``finish``
columns), never re-derived by ``start + dur`` arithmetic — which is
what makes the stitched output **bit-identical** whether it was built
from a live tracer, a spilled JSONL log, the per-event engine, or the
vectorized replay engine. Legs therefore tile ``[arrival,
completion]`` exactly: their durations sum to the request's
time-in-system within 1e-9 (:meth:`Journey.critical_path` asserts
it), and :meth:`TraceAnalysis.reconcile` ties the per-category energy
attribution to the run's :class:`~repro.energy.EnergyReport` /
:class:`~repro.fleet.FleetReport` ledgers at the same 1e-9 every
ledger audit in this repo uses.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from math import fsum

from repro.errors import TelemetryError
from repro.telemetry.export import _spans_of

#: Leg name -> the coarse bucket run-to-run diffs attribute deltas to.
LEG_GROUPS = {
    "defer": "rtt", "ingress": "rtt", "egress": "rtt",
    "window": "queueing", "queue": "queueing", "serial": "queueing",
    "preempted": "queueing",
    "throttle": "throttle",
    "swap": "swap",
    "compute": "compute",
}

#: Bucket order for rendered tables / flame stacks (stable, coarse
#: first-to-last along a journey).
LEG_ORDER = ("defer", "ingress", "window", "queue", "throttle", "swap",
             "serial", "preempted", "compute", "egress")

_LEG_RANK = {name: i for i, name in enumerate(LEG_ORDER)}


@dataclass(slots=True)
class Leg:
    """One contiguous slice of a request's time in the system."""

    name: str
    start_ms: float
    end_ms: float
    energy_mj: float = 0.0

    @property
    def dur_ms(self):
        return self.end_ms - self.start_ms

    @property
    def group(self):
        return LEG_GROUPS[self.name]

    def to_dict(self):
        out = {"name": self.name, "start_ms": self.start_ms,
               "end_ms": self.end_ms}
        if self.energy_mj:
            out["energy_mj"] = self.energy_mj
        return out

    @classmethod
    def from_dict(cls, row):
        return cls(name=row["name"], start_ms=row["start_ms"],
                   end_ms=row["end_ms"],
                   energy_mj=row.get("energy_mj", 0.0))


@dataclass(slots=True)
class Journey:
    """One request's causal path through the fleet/site/device scopes."""

    request_id: object
    site: str
    task: str
    mode: str
    target_ms: float
    arrival_ms: float
    completion_ms: float
    deadline_ms: float
    legs: list
    accel: object = None
    hw: object = None
    batch: object = None
    attempts: int = 1

    @property
    def time_in_system_ms(self):
        return self.completion_ms - self.arrival_ms

    @property
    def violated(self):
        return self.completion_ms > self.deadline_ms + 1e-9

    @property
    def energy_mj(self):
        return fsum(leg.energy_mj for leg in self.legs)

    @property
    def slo_class(self):
        """The per-class ledger key this journey rolls up under."""
        return f"{self.task}|{self.target_ms:g}ms|{self.mode}"

    def by_leg(self):
        """``{leg name: (total_ms, total_mj)}`` in journey order."""
        out = {}
        for leg in self.legs:
            ms, mj = out.get(leg.name, (0.0, 0.0))
            out[leg.name] = (ms + leg.dur_ms, mj + leg.energy_mj)
        return dict(sorted(out.items(),
                           key=lambda kv: _LEG_RANK[kv[0]]))

    def critical_path(self, tol=1e-9):
        """The journey's critical path (it *is* the leg chain).

        A request's path is strictly serial — no leg overlaps another —
        so the critical path is the full ordered chain. Verifies the
        tiling invariant: leg durations sum to time-in-system within
        ``tol`` (raises :class:`~repro.errors.TelemetryError` on any
        gap, which would mean the stitcher lost a causal segment).
        """
        total = fsum(leg.dur_ms for leg in self.legs)
        gap = abs(total - self.time_in_system_ms)
        if gap > tol:
            raise TelemetryError(
                f"journey {self.request_id!r}: legs sum to {total!r} ms "
                f"but time-in-system is {self.time_in_system_ms!r} ms "
                f"(gap {gap:.3e} > tol {tol:g})")
        by_leg = self.by_leg()
        dominant = max(by_leg, key=lambda k: (by_leg[k][0],
                                              -_LEG_RANK[k])) \
            if by_leg else None
        return {
            "request": self.request_id,
            "time_in_system_ms": self.time_in_system_ms,
            "leg_sum_ms": total,
            "dominant": dominant,
            "by_leg": {k: {"ms": ms, "mj": mj}
                       for k, (ms, mj) in by_leg.items()},
        }

    def to_dict(self):
        return {
            "request": self.request_id,
            "site": self.site,
            "task": self.task,
            "mode": self.mode,
            "target_ms": self.target_ms,
            "arrival_ms": self.arrival_ms,
            "completion_ms": self.completion_ms,
            "deadline_ms": self.deadline_ms,
            "violated": self.violated,
            "accel": self.accel,
            "hw": self.hw,
            "batch": self.batch,
            "attempts": self.attempts,
            "energy_mj": self.energy_mj,
            "legs": [leg.to_dict() for leg in self.legs],
        }

    @classmethod
    def from_dict(cls, row):
        return cls(
            request_id=row["request"], site=row["site"],
            task=row["task"], mode=row["mode"],
            target_ms=row["target_ms"], arrival_ms=row["arrival_ms"],
            completion_ms=row["completion_ms"],
            deadline_ms=row["deadline_ms"],
            legs=[Leg.from_dict(r) for r in row["legs"]],
            accel=row.get("accel"), hw=row.get("hw"),
            batch=row.get("batch"),
            attempts=row.get("attempts", 1))


class TraceAnalysis:
    """Stitched journeys plus the energy no single request owns."""

    def __init__(self, journeys, unattributed):
        #: Journeys sorted by request id (engine-order independent).
        self.journeys = journeys
        #: ``{scope: {category: mJ}}`` of span energy that belongs to
        #: the run, not to one request: idle leakage, rail transitions,
        #: and preemption-wasted compute.
        self.unattributed = unattributed
        self.by_request = {j.request_id: j for j in journeys}

    def __len__(self):
        return len(self.journeys)

    def scopes(self):
        seen = {j.site for j in self.journeys}
        seen.update(self.unattributed)
        return sorted(seen)

    # -- energy attribution --------------------------------------------------------

    def attribution(self):
        """``{scope: {category: {"attributed", "unattributed", "total"}}}``.

        Attributed = the fsum of journey leg energies (per-request
        compute plus equal swap shares, refunds netted); unattributed =
        idle/transition/wasted-compute span energy. Their sum is what
        :meth:`reconcile` holds against the ledgers.
        """
        cats = ("compute", "swap", "idle", "transition")
        leg_cat = {"compute": "compute", "swap": "swap"}
        cells = {}  # (scope, cat) -> [values]
        for journey in self.journeys:
            for leg in journey.legs:
                cat = leg_cat.get(leg.name)
                if cat is not None and leg.energy_mj != 0.0:
                    cells.setdefault((journey.site, cat),
                                     []).append(leg.energy_mj)
        out = {}
        for scope in self.scopes():
            extra = self.unattributed.get(scope, {})
            out[scope] = {}
            for cat in cats:
                attributed = fsum(cells.get((scope, cat), ()))
                unattributed = extra.get(cat, 0.0)
                out[scope][cat] = {
                    "attributed": attributed,
                    "unattributed": unattributed,
                    "total": attributed + unattributed,
                }
        return out

    def reconcile(self, report, tol=1e-9):
        """Audit the attribution against the run's energy ledgers.

        ``report`` is a :class:`~repro.cluster.ClusterReport` (scope
        defaults to the single analyzed scope) or a
        :class:`~repro.fleet.FleetReport` (per-site audit). For every
        scope and every energy category, attributed + unattributed
        span energy must equal the ledger column within ``tol``.
        Raises :class:`~repro.errors.TelemetryError` on any gap.
        """
        attribution = self.attribution()
        if hasattr(report, "sites"):  # FleetReport
            pairs = [(o.site_id, o.report.energy) for o in report.sites]
        else:
            scopes = self.scopes()
            if len(scopes) != 1:
                raise TelemetryError(
                    f"cluster report covers one scope; analysis has "
                    f"{scopes}")
            pairs = [(scopes[0], report.energy)]
        for scope, energy in pairs:
            ledger = {"compute": energy.compute_mj,
                      "swap": energy.swap_mj,
                      "idle": energy.idle_mj,
                      "transition": energy.transition_mj}
            table = attribution.get(scope, {})
            for cat, expected in ledger.items():
                cell = table.get(cat, {"total": 0.0})
                gap = abs(cell["total"] - expected)
                if gap > tol:
                    raise TelemetryError(
                        f"energy attribution gap at {scope}/{cat}: "
                        f"attributed+unattributed {cell['total']!r} mJ "
                        f"vs ledger {expected!r} mJ "
                        f"(gap {gap:.3e} > tol {tol:g})")
        return True

    # -- serialization -------------------------------------------------------------

    def to_dict(self):
        return {
            "journeys": [j.to_dict() for j in self.journeys],
            "unattributed": {
                scope: dict(sorted(cats.items()))
                for scope, cats in sorted(self.unattributed.items())},
        }

    def to_jsonl(self, path):
        """One journey per line (sorted by request id); returns count."""
        with open(path, "w", encoding="utf-8") as f:
            for journey in self.journeys:
                f.write(json.dumps(journey.to_dict(), sort_keys=True))
                f.write("\n")
        return len(self.journeys)


def _column(values):
    """A plain list for ``values`` (live vector spans carry ndarrays)."""
    return values.tolist() if hasattr(values, "tolist") else values


def _carve(t0, t1, throttles, legs):
    """Split a dispatch wait into queue/throttle legs by overlap."""
    cur = t0
    for a, b in throttles:
        if b <= cur:
            continue
        if a >= t1:
            break
        lo = a if a > cur else cur
        hi = b if b < t1 else t1
        if lo > cur:
            legs.append(Leg("queue", cur, lo))
        if hi > lo:
            legs.append(Leg("throttle", lo, hi))
        cur = hi
    if t1 > cur:
        legs.append(Leg("queue", cur, t1))


def analyze(source):
    """Stitch ``source`` (tracer, span iterable, or JSONL path).

    Returns a :class:`TraceAnalysis`. Spans predating the journey
    plumbing (no ``rids`` on window/queue spans) are not stitchable
    and raise :class:`~repro.errors.TelemetryError`.
    """
    wins = {}        # rid -> (scope, arrival, task, mode, target, trigger)
    disp = {}        # (scope, seq) -> (ready, dur, accel, hw, rids)
    attempts = {}    # rid -> [(scope, seq), ...] in emission order
    swaps = {}       # (scope, seq) -> (start, dur, energy)
    refunds = {}     # (scope, seq) -> summed refund energy (negative)
    comp_base = {}   # (scope, seq) -> batch compute start
    comp_req = {}    # rid -> (scope, seq, boundary, finish, energy)
    preempts = {}    # (scope, seq) -> instant
    routes = {}      # rid -> (ts, site, deadline)
    defers = {}      # rid -> first defer instant
    ingress = {}     # rid -> (start, dur)
    egress = {}      # rid -> (start, dur)
    throttles = {}   # scope -> [(start, end)]
    unattributed = {}  # scope -> {cat: [values]}
    linkable = False

    def spill(scope, cat, energy):
        unattributed.setdefault(scope, {}).setdefault(cat,
                                                      []).append(energy)

    for span in _spans_of(source):
        cat = span.cat
        args = span.args
        if cat == "window":
            rids = args.get("rids") if args else None
            if rids is None:
                continue
            linkable = True
            scope = span.scope
            task, mode = args["task"], args["mode"]
            target = float(args["target"])
            trigger = args["trigger"]
            for rid, arr in zip(_column(rids), args["arrivals"]):
                wins[rid] = (scope, float(arr), task, mode, target,
                             trigger)
        elif cat == "queue":
            rids = args.get("rids") if args else None
            if rids is None:
                continue
            linkable = True
            key = (span.scope, args["batch"])
            rids = _column(rids)
            disp[key] = (float(span.start_ms),
                         float(span.dur_ms or 0.0), args.get("accel"),
                         args.get("hw"), rids)
            for rid in rids:
                attempts.setdefault(rid, []).append(key)
        elif cat == "swap":
            seq = args.get("batch") if args else None
            if span.name == "swap-refund":
                if seq is None:
                    spill(span.scope, "swap", float(span.energy_mj))
                else:
                    key = (span.scope, seq)
                    refunds[key] = refunds.get(key, 0.0) \
                        + float(span.energy_mj)
            elif seq is not None:
                swaps[(span.scope, seq)] = (
                    float(span.start_ms), float(span.dur_ms or 0.0),
                    float(span.energy_mj))
            else:
                spill(span.scope, "swap", float(span.energy_mj))
        elif cat == "compute":
            if span.name == "wasted-compute":
                spill(span.scope, "compute", float(span.energy_mj))
            elif args and "rids" in args:
                # Vector engine: one batch-granular span carrying the
                # exact per-member finish/energy columns.
                key = (span.scope, args["batch"])
                base = float(span.start_ms)
                comp_base[key] = base
                boundary = base
                for rid, finish, energy in zip(
                        _column(args["rids"]), args["finish"],
                        args["energy"]):
                    comp_req[rid] = (key, boundary, float(finish),
                                     float(energy))
                    boundary = float(finish)
            elif args and "rid" in args:
                # Event engine: one span per member; start is the
                # member's boundary, ``finish`` its exact completion.
                key = (span.scope, args["batch"])
                boundary = float(span.start_ms)
                base = comp_base.get(key)
                if base is None or boundary < base:
                    comp_base[key] = boundary
                comp_req[args["rid"]] = (key, boundary,
                                         float(args["finish"]),
                                         float(span.energy_mj))
            elif span.energy_mj:
                spill(span.scope, "compute", float(span.energy_mj))
        elif cat == "idle":
            spill(span.scope, "idle", float(span.energy_mj))
        elif cat == "transition":
            spill(span.scope, "transition", float(span.energy_mj))
        elif cat == "preempt":
            if args and "batch" in args:
                preempts[(span.scope, args["batch"])] = \
                    float(span.start_ms)
        elif cat == "budget":
            if span.name == "throttle":
                start = float(span.start_ms)
                throttles.setdefault(span.scope, []).append(
                    (start, start + float(span.dur_ms or 0.0)))
        elif cat == "net":
            if args is None or "request" not in args:
                continue
            rid = args["request"]
            ts = float(span.start_ms)
            if span.name == "ingress":
                ingress[rid] = (ts, float(span.dur_ms or 0.0))
            elif span.name == "egress":
                egress[rid] = (ts, float(span.dur_ms or 0.0))
            elif span.name == "defer":
                if rid not in defers or ts < defers[rid]:
                    defers[rid] = ts
            elif span.name.startswith("route:"):
                routes[rid] = (ts, args["site"],
                               float(args["deadline"])
                               if "deadline" in args else None)

    if not linkable and (wins or disp or comp_req):
        raise TelemetryError(
            "span stream carries no request-linkable spans (pre-"
            "journey log?); re-trace the run to analyze it")

    for scope in throttles:
        throttles[scope].sort()

    journeys = []
    for rid, window in wins.items():
        scope, arrival, task, mode, target, _trigger = window
        final = comp_req.get(rid)
        tries = attempts.get(rid, ())
        if final is None or not tries:
            raise TelemetryError(
                f"request {rid!r} has a window but no completed "
                f"dispatch in the span stream (truncated log?)")
        legs = []
        # Fleet prefix: shaping deferral, then the ingress wire leg.
        route = routes.get(rid)
        deadline = arrival + target
        front_arrival = arrival
        if route is not None:
            routed, _site, fleet_deadline = route
            if fleet_deadline is not None:
                deadline = fleet_deadline
            front_arrival = defers.get(rid, routed)
            if routed > front_arrival:
                legs.append(Leg("defer", front_arrival, routed))
            wire = ingress.get(rid)
            if wire is not None:
                # Ingress ends exactly at the site-local arrival (the
                # admit rewrite uses the same now + rtt/2 float add).
                legs.append(Leg("ingress", routed, routed + wire[1]))
        cursor = arrival
        scope_throttles = throttles.get(scope, ())
        for i, key in enumerate(tries):
            ready, _dur, accel, hw, rids = disp[key]
            if ready > cursor:
                # First attempt: batch-former wait up to the window
                # close (== the dispatch span's own ready instant).
                legs.append(Leg("window" if i == 0 else "preempted",
                                cursor, ready))
                cursor = ready
            swap = swaps.get(key)
            base = comp_base.get(key)
            preempt_at = preempts.get(key)
            # Dispatch wait runs until the engine-emitted start anchor:
            # the swap span's start, else the batch compute base.
            started = swap[0] if swap is not None else base
            if started is None:
                started = preempt_at if preempt_at is not None \
                    else cursor
            if started > cursor:
                _carve(cursor, started, scope_throttles, legs)
                cursor = started
            if swap is not None:
                swap_end = base
                if swap_end is None:
                    swap_end = swap[0] + swap[1]
                    if preempt_at is not None \
                            and preempt_at < swap_end:
                        swap_end = preempt_at  # aborted mid-swap
                net_mj = swap[2] + refunds.get(key, 0.0)
                share = net_mj / len(rids) if rids else net_mj
                if swap_end > cursor or share:
                    legs.append(Leg("swap", cursor,
                                    max(swap_end, cursor),
                                    energy_mj=share))
                    cursor = max(swap_end, cursor)
            if final[0] == key:
                _fkey, boundary, finish, energy = final
                if boundary > cursor:
                    legs.append(Leg("serial", cursor, boundary))
                legs.append(Leg("compute", boundary, finish,
                                energy_mj=energy))
                cursor = finish
                break
            # Preempted before this member's sentence ran: stall until
            # the next attempt's requeue-ready instant.
            next_ready = disp[tries[i + 1]][0]
            if next_ready > cursor:
                legs.append(Leg("preempted", cursor, next_ready))
                cursor = next_ready
        wire = egress.get(rid)
        if wire is not None:
            # Fleet completion = site completion + rtt/2, the same
            # float add FleetRecord performs.
            legs.append(Leg("egress", cursor, cursor + wire[1]))
            cursor = cursor + wire[1]
        final_key = final[0]
        _ready, _dur, accel, hw, _rids = disp[final_key]
        journeys.append(Journey(
            request_id=rid, site=scope, task=task, mode=mode,
            target_ms=target, arrival_ms=front_arrival,
            completion_ms=cursor, deadline_ms=deadline,
            legs=[leg for leg in legs
                  if leg.dur_ms != 0.0 or leg.energy_mj != 0.0],
            accel=accel, hw=hw, batch=final_key[1],
            attempts=len(tries)))

    journeys.sort(key=lambda j: (str(type(j.request_id)),
                                 j.request_id))
    return TraceAnalysis(
        journeys,
        {scope: {cat: fsum(values) for cat, values in cats.items()}
         for scope, cats in unattributed.items()})
