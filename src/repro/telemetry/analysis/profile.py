"""Aggregated profiling views over stitched journeys.

Two renderings of the same rollup:

* :func:`hot_paths` — per ``(task, SLO class, mode, hw)`` totals:
  request/violation counts, per-leg milliseconds, per-category
  millijoules — the table a capacity planner reads;
* :func:`flamegraph_lines` / :func:`write_flamegraph` — collapsed-stack
  export (``frame;frame;frame weight`` per line) loadable by
  speedscope (https://speedscope.app) and Brendan Gregg's
  ``flamegraph.pl``. Stacks are ``scope;task|slo|mode|hw;leg`` and the
  weight is integer nanoseconds (``weight="time"``) or nanojoules
  (``weight="energy"``), so fractional milliseconds survive the
  integer collapse losslessly at trace scale.
"""

from __future__ import annotations

from math import fsum

from repro.errors import TelemetryError
from repro.telemetry.analysis.journeys import LEG_ORDER, _LEG_RANK


def _class_key(journey):
    hw = "any" if journey.hw is None else journey.hw
    return (f"{journey.task}|{journey.target_ms:g}ms|{journey.mode}"
            f"|hw{hw}")


def hot_paths(analysis):
    """Rollup by (task, SLO class, mode, hw): the hot-path table.

    Returns ``{class_key: {"requests", "violations", "attempts",
    "time_in_system_ms", "legs_ms": {leg: ms}, "energy_mj":
    {category: mJ}}}`` sorted by descending total time in system.
    """
    groups = {}
    for journey in analysis.journeys:
        key = _class_key(journey)
        cell = groups.get(key)
        if cell is None:
            cell = groups[key] = {
                "requests": 0, "violations": 0, "attempts": 0,
                "tis": [], "legs": {}, "energy": {}}
        cell["requests"] += 1
        cell["violations"] += 1 if journey.violated else 0
        cell["attempts"] += journey.attempts
        cell["tis"].append(journey.time_in_system_ms)
        for leg in journey.legs:
            ms, mj = cell["legs"].get(leg.name, (0.0, 0.0))
            cell["legs"][leg.name] = (ms + leg.dur_ms,
                                      mj + leg.energy_mj)
            if leg.name in ("compute", "swap"):
                cell["energy"][leg.name] = \
                    cell["energy"].get(leg.name, 0.0) + leg.energy_mj
    out = {}
    for key, cell in groups.items():
        tis = fsum(cell["tis"])
        out[key] = {
            "requests": cell["requests"],
            "violations": cell["violations"],
            "attempts": cell["attempts"],
            "time_in_system_ms": tis,
            "mean_time_in_system_ms": tis / cell["requests"],
            "legs_ms": {
                name: cell["legs"][name][0]
                for name in sorted(cell["legs"],
                                   key=_LEG_RANK.__getitem__)},
            "energy_mj": dict(sorted(cell["energy"].items())),
        }
    return dict(sorted(out.items(),
                       key=lambda kv: (-kv[1]["time_in_system_ms"],
                                       kv[0])))


def flamegraph_lines(analysis, weight="time"):
    """Collapsed stacks, one ``scope;class;leg weight`` line each.

    ``weight="time"`` sums leg durations (integer nanoseconds);
    ``weight="energy"`` sums leg energies (integer nanojoules, only
    legs that carry energy). Lines sort lexicographically — the export
    is deterministic and diffable.
    """
    if weight not in ("time", "energy"):
        raise TelemetryError(
            f"flamegraph weight must be 'time' or 'energy', "
            f"got {weight!r}")
    cells = {}
    for journey in analysis.journeys:
        cls = _class_key(journey)
        for leg in journey.legs:
            value = leg.dur_ms if weight == "time" else leg.energy_mj
            if value == 0.0:
                continue
            stack = f"{journey.site};{cls};{leg.name}"
            cells[stack] = cells.get(stack, 0.0) + value
    if weight == "energy":
        for scope, cats in analysis.unattributed.items():
            for cat, mj in cats.items():
                if mj != 0.0:
                    stack = f"{scope};(unattributed);{cat}"
                    cells[stack] = cells.get(stack, 0.0) + mj
    lines = []
    for stack in sorted(cells):
        value = int(round(cells[stack] * 1e6))  # ms -> ns, mJ -> nJ
        if value:
            lines.append(f"{stack} {value}")
    return lines


def write_flamegraph(analysis, path, weight="time"):
    """Write :func:`flamegraph_lines` to ``path``; returns line count."""
    lines = flamegraph_lines(analysis, weight=weight)
    with open(path, "w", encoding="utf-8") as f:
        f.write("\n".join(lines))
        if lines:
            f.write("\n")
    return len(lines)


def render_hot_paths(analysis, limit=12):
    """ASCII hot-path table (top ``limit`` classes by time)."""
    from repro.utils import format_table

    table = hot_paths(analysis)
    rows = []
    for key, cell in list(table.items())[:limit]:
        legs = cell["legs_ms"]
        dominant = max(legs, key=lambda k: (legs[k], -_LEG_RANK[k])) \
            if legs else "-"
        rows.append([
            key, str(cell["requests"]), str(cell["violations"]),
            f"{cell['mean_time_in_system_ms']:.3f}",
            dominant,
            f"{cell['energy_mj'].get('compute', 0.0):.3f}",
            f"{cell['energy_mj'].get('swap', 0.0):.3f}",
        ])
    return format_table(
        ["Class (task|slo|mode|hw)", "Reqs", "Miss", "Mean ms",
         "Hottest leg", "Compute mJ", "Swap mJ"],
        rows, title=f"Hot paths — {len(analysis)} journeys")


#: Re-exported for callers building custom rollups.
__all__ = ["hot_paths", "flamegraph_lines", "write_flamegraph",
           "render_hot_paths", "LEG_ORDER"]
