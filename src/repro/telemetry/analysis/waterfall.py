"""Latency/energy waterfall for one request's journey (ASCII + JSON).

The waterfall is the classic browser-devtools view transplanted onto
the sim clock: one row per leg, bars positioned proportionally inside
``[arrival, completion]``, with the leg's duration and energy share in
the gutter. :func:`waterfall_json` is the same data as a typed dict
(the journey plus its critical-path summary), so dashboards can render
their own.
"""

from __future__ import annotations

from repro.errors import TelemetryError

#: One glyph per leg kind — visually distinct at a glance.
LEG_GLYPHS = {
    "defer": "·", "ingress": ">", "egress": "<",
    "window": "w", "queue": "q", "throttle": "t",
    "swap": "s", "serial": "-", "preempted": "x", "compute": "#",
}


def waterfall_json(journey):
    """The waterfall as a typed dict: journey + critical-path rollup."""
    return {
        "journey": journey.to_dict(),
        "critical_path": journey.critical_path(),
    }


def render_waterfall(journey, width=56):
    """ASCII waterfall of one journey's legs."""
    if width < 8:
        raise TelemetryError("waterfall width must be >= 8")
    span = journey.time_in_system_ms
    if span <= 0:
        span = 1.0
    scale = (width - 1) / span
    hw = "any" if journey.hw is None else journey.hw
    verdict = "MISS" if journey.violated else "met"
    lines = [
        f"request {journey.request_id} · {journey.task} "
        f"{journey.target_ms:g}ms {journey.mode} · site {journey.site} "
        f"accel{journey.accel} hw{hw}",
        f"  arrival {journey.arrival_ms:.3f}ms -> completion "
        f"{journey.completion_ms:.3f}ms "
        f"({journey.time_in_system_ms:.3f}ms in system, "
        f"deadline {verdict}; {journey.energy_mj:.3f}mJ attributed"
        + (f"; {journey.attempts} attempts" if journey.attempts > 1
           else "") + ")",
    ]
    name_w = max((len(leg.name) for leg in journey.legs), default=4)
    for leg in journey.legs:
        lo = int((leg.start_ms - journey.arrival_ms) * scale)
        hi = int((leg.end_ms - journey.arrival_ms) * scale)
        hi = max(hi, lo + 1)
        bar = " " * lo + LEG_GLYPHS.get(leg.name, "?") * (hi - lo)
        energy = f" {leg.energy_mj:9.4f}mJ" if leg.energy_mj else ""
        lines.append(
            f"  {leg.name:<{name_w}} |{bar:<{width}}| "
            f"{leg.dur_ms:9.4f}ms{energy}")
    return "\n".join(lines)
