"""Run-to-run regression diffing over stitched journeys.

:func:`diff_runs` aligns two analyses of the **same trace** (different
config, policy, or engine) request-by-request and attributes the
deltas — p50/p99 time-in-system, deadline violations, millijoules —
to the causal buckets the legs roll up under: **queueing** (window +
dispatch + serial + preemption stalls) vs **compute** vs **swap** vs
**throttle** vs **rtt**. Energy deltas additionally carry the
run-level unattributed categories (idle, transitions, wasted compute),
so the total-joules delta ties out against the two runs' ledgers at
1e-9 — the diff explains exactly the gap the energy reports measure.

The result is a typed :class:`RegressionReport` that round-trips
through JSON (``to_json`` / ``from_json``), so a CI job can archive
one per build and re-read the trajectory later.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from math import fsum

import numpy as np

from repro.errors import TelemetryError
from repro.telemetry.analysis.journeys import (LEG_GROUPS,
                                               TraceAnalysis, analyze)

#: Latency attribution buckets, in journey order.
GROUPS = ("rtt", "queueing", "throttle", "swap", "compute")

#: Energy attribution categories (ledger columns).
ENERGY_CATS = ("compute", "swap", "idle", "transition")


def _as_analysis(run):
    if isinstance(run, TraceAnalysis):
        return run
    return analyze(run)


def _percentile(values, q):
    return float(np.percentile(np.asarray(values, dtype=np.float64),
                               q)) if values else 0.0


def _group_ms(analysis):
    totals = dict.fromkeys(GROUPS, 0.0)
    cells = {g: [] for g in GROUPS}
    for journey in analysis.journeys:
        for leg in journey.legs:
            cells[LEG_GROUPS[leg.name]].append(leg.dur_ms)
    for group in GROUPS:
        totals[group] = fsum(cells[group])
    return totals


def _energy_mj(analysis):
    cells = {c: [] for c in ENERGY_CATS}
    for journey in analysis.journeys:
        for leg in journey.legs:
            if leg.name in ("compute", "swap") and leg.energy_mj:
                cells[leg.name].append(leg.energy_mj)
    totals = {cat: fsum(cells[cat]) for cat in ENERGY_CATS}
    for cats in analysis.unattributed.values():
        for cat, mj in cats.items():
            totals[cat] = totals.get(cat, 0.0) + mj
    return totals


@dataclass(slots=True)
class RegressionReport:
    """Typed, JSON-round-tripping result of :func:`diff_runs`."""

    requests: int
    only_a: list
    only_b: list
    latency: dict         # p50/p99/mean per side + deltas (b - a)
    violations: dict      # {"a", "b", "delta"}
    time_ms: dict         # {group: {"a", "b", "delta"}}
    energy_mj: dict       # {category: {"a", "b", "delta"}}
    total_energy_mj: dict  # {"a", "b", "delta"}
    dominant_time_group: str
    dominant_energy_category: str
    regressed: list = field(default_factory=list)

    def to_dict(self):
        return {
            "requests": self.requests,
            "only_a": self.only_a,
            "only_b": self.only_b,
            "latency": self.latency,
            "violations": self.violations,
            "time_ms": self.time_ms,
            "energy_mj": self.energy_mj,
            "total_energy_mj": self.total_energy_mj,
            "dominant_time_group": self.dominant_time_group,
            "dominant_energy_category": self.dominant_energy_category,
            "regressed": self.regressed,
        }

    @classmethod
    def from_dict(cls, row):
        return cls(**{key: row[key] for key in (
            "requests", "only_a", "only_b", "latency", "violations",
            "time_ms", "energy_mj", "total_energy_mj",
            "dominant_time_group", "dominant_energy_category",
            "regressed")})

    def to_json(self):
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))

    def render(self):
        from repro.utils import format_table

        rows = [[group,
                 f"{self.time_ms[group]['a']:.3f}",
                 f"{self.time_ms[group]['b']:.3f}",
                 f"{self.time_ms[group]['delta']:+.3f}"]
                for group in GROUPS]
        time_table = format_table(
            ["Bucket", "A (ms)", "B (ms)", "delta"], rows,
            title=f"Run diff — {self.requests} aligned requests")
        rows = [[cat,
                 f"{self.energy_mj[cat]['a']:.3f}",
                 f"{self.energy_mj[cat]['b']:.3f}",
                 f"{self.energy_mj[cat]['delta']:+.3f}"]
                for cat in ENERGY_CATS]
        rows.append(["total",
                     f"{self.total_energy_mj['a']:.3f}",
                     f"{self.total_energy_mj['b']:.3f}",
                     f"{self.total_energy_mj['delta']:+.3f}"])
        energy_table = format_table(
            ["Category", "A (mJ)", "B (mJ)", "delta"], rows,
            title="Energy attribution")
        lat = self.latency
        summary = (
            f"p50 {lat['p50_a']:.3f} -> {lat['p50_b']:.3f}ms "
            f"({lat['delta_p50']:+.3f}), "
            f"p99 {lat['p99_a']:.3f} -> {lat['p99_b']:.3f}ms "
            f"({lat['delta_p99']:+.3f}); violations "
            f"{self.violations['a']} -> {self.violations['b']} "
            f"({self.violations['delta']:+d}); dominant time bucket: "
            f"{self.dominant_time_group}, dominant energy category: "
            f"{self.dominant_energy_category}")
        return "\n".join([time_table, "", energy_table, "", summary])


def diff_runs(a, b):
    """Diff two replays of the same trace; returns RegressionReport.

    ``a`` / ``b`` are :class:`TraceAnalysis` objects or any span
    source :func:`~repro.telemetry.analysis.analyze` accepts. Deltas
    are ``b - a`` throughout.
    """
    run_a, run_b = _as_analysis(a), _as_analysis(b)
    ids_a = set(run_a.by_request)
    ids_b = set(run_b.by_request)
    shared = ids_a & ids_b
    if not shared:
        raise TelemetryError(
            f"runs share no request ids ({len(ids_a)} vs {len(ids_b)} "
            "journeys); diff_runs aligns replays of the same trace")
    tis_a = [run_a.by_request[rid].time_in_system_ms for rid in shared]
    tis_b = [run_b.by_request[rid].time_in_system_ms for rid in shared]
    viol_a = sum(1 for rid in shared if run_a.by_request[rid].violated)
    viol_b = sum(1 for rid in shared if run_b.by_request[rid].violated)

    latency = {
        "p50_a": _percentile(tis_a, 50), "p50_b": _percentile(tis_b, 50),
        "p99_a": _percentile(tis_a, 99), "p99_b": _percentile(tis_b, 99),
        "mean_a": fsum(tis_a) / len(shared),
        "mean_b": fsum(tis_b) / len(shared),
    }
    latency["delta_p50"] = latency["p50_b"] - latency["p50_a"]
    latency["delta_p99"] = latency["p99_b"] - latency["p99_a"]
    latency["delta_mean"] = latency["mean_b"] - latency["mean_a"]

    group_a, group_b = _group_ms(run_a), _group_ms(run_b)
    time_ms = {group: {"a": group_a[group], "b": group_b[group],
                       "delta": group_b[group] - group_a[group]}
               for group in GROUPS}
    energy_a, energy_b = _energy_mj(run_a), _energy_mj(run_b)
    energy_mj = {cat: {"a": energy_a[cat], "b": energy_b[cat],
                       "delta": energy_b[cat] - energy_a[cat]}
                 for cat in ENERGY_CATS}
    total_a = fsum(energy_a[cat] for cat in ENERGY_CATS)
    total_b = fsum(energy_b[cat] for cat in ENERGY_CATS)

    dominant_time = max(GROUPS,
                        key=lambda g: abs(time_ms[g]["delta"]))
    dominant_energy = max(ENERGY_CATS,
                          key=lambda c: abs(energy_mj[c]["delta"]))
    regressed = []
    if latency["delta_p99"] > 0:
        regressed.append(
            f"p99 +{latency['delta_p99']:.3f}ms "
            f"(mostly {dominant_time})")
    if viol_b > viol_a:
        regressed.append(f"violations +{viol_b - viol_a}")
    if total_b > total_a:
        regressed.append(
            f"energy +{total_b - total_a:.3f}mJ "
            f"(mostly {dominant_energy})")

    return RegressionReport(
        requests=len(shared),
        only_a=sorted(ids_a - shared, key=str),
        only_b=sorted(ids_b - shared, key=str),
        latency=latency,
        violations={"a": viol_a, "b": viol_b, "delta": viol_b - viol_a},
        time_ms=time_ms,
        energy_mj=energy_mj,
        total_energy_mj={"a": total_a, "b": total_b,
                         "delta": total_b - total_a},
        dominant_time_group=dominant_time,
        dominant_energy_category=dominant_energy,
        regressed=regressed,
    )
