"""Trace-analysis drivers: journeys, profiles, diffs, and the smoke gate.

``python -m repro.telemetry.analysis SPANS.jsonl`` stitches a span log
into per-request journeys, then renders whichever views are asked for:

* ``--journeys OUT.jsonl``  — write one journey per line;
* ``--critical-path``       — hot-path table + the worst critical paths;
* ``--flame OUT.txt``       — collapsed-stack flamegraph export
  (``--flame-weight energy`` switches the weight to nanojoules);
* ``--waterfall [RID]``     — ASCII waterfall for one request
  (default: the slowest);
* ``--diff A.jsonl B.jsonl`` — align two span logs of the same trace
  and print the typed regression report (``--json`` for the raw dict).

``--smoke`` is the analysis CI gate: it replays the reference
workload on both cluster engines and through the fleet, then checks
the contracts this package promises — journeys bit-identical across
live tracer / spilled JSONL / event / vector sources, leg durations
tiling time-in-system at 1e-9, energy attribution reconciling with
the ledgers at 1e-9, and ``diff_runs`` round-tripping through JSON.
Exits non-zero on any regression.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

from repro.errors import ReproError, TelemetryError
from repro.telemetry import Tracer, write_spans_jsonl
from repro.telemetry.analysis import (RegressionReport, analyze,
                                      diff_runs, flamegraph_lines,
                                      render_hot_paths,
                                      render_waterfall,
                                      waterfall_json,
                                      write_flamegraph)


def _check(condition, message):
    # Explicit check (not assert): the smoke gate must still gate under
    # ``python -O``, which strips assert statements.
    if not condition:
        raise TelemetryError(f"smoke check failed: {message}")


def _canonical(analysis):
    return json.dumps(analysis.to_dict(), sort_keys=True)


def _smoke_cluster(workdir):
    """Journeys bit-identical across engines and span sources."""
    from repro.telemetry.__main__ import (_run_cluster,
                                          reference_workload)

    registry, trace = reference_workload()
    digests = {}
    reports = {}
    for engine in ("event", "vector"):
        tracer = Tracer()
        report = _run_cluster(registry, trace, engine, tracer=tracer)
        live = analyze(tracer)
        _check(len(live) == len(report.records),
               f"{engine}: {len(live)} journeys != "
               f"{len(report.records)} records")
        for journey in live.journeys:
            journey.critical_path(tol=1e-9)  # raises on tiling gaps
        live.reconcile(report, tol=1e-9)

        # The spilled log and the written log must stitch identically.
        spill = os.path.join(workdir, f"spill_{engine}.jsonl")
        with Tracer(max_spans=64, spill_path=spill) as spiller:
            _run_cluster(registry, trace, engine, tracer=spiller)
            _check(spiller.spilled > 0,
                   f"{engine}: spill cap never triggered")
            _check(_canonical(analyze(spiller)) == _canonical(live),
                   f"{engine}: spilled analysis diverges from live")
        log = os.path.join(workdir, f"spans_{engine}.jsonl")
        write_spans_jsonl(tracer, log)
        _check(_canonical(analyze(log)) == _canonical(live),
               f"{engine}: JSONL analysis diverges from live")
        digests[engine] = _canonical(live)
        reports[engine] = (tracer, report)

    _check(digests["event"] == digests["vector"],
           "event and vector engines stitch different journeys")

    # Per-record cross-check: completions/violations match the report.
    tracer, report = reports["event"]
    run = analyze(tracer)
    for record in report.records:
        journey = run.by_request[record.request.request_id]
        _check(journey.completion_ms == record.completion_ms,
               f"journey completion diverges for "
               f"{record.request.request_id}")
        _check(journey.violated == (not record.deadline_met),
               f"journey violation flag diverges for "
               f"{record.request.request_id}")
    return digests["event"]


def _smoke_fleet():
    """Fleet journeys: RTT legs, fleet-level tiling, ledger audit."""
    from repro.fleet import FleetAutoscaler, FleetOrchestrator
    from repro.fleet.__main__ import reference_fleet
    from repro.telemetry.__main__ import reference_workload

    registry, trace = reference_workload()
    tracer = Tracer()
    fleet = FleetOrchestrator(registry, reference_fleet(),
                              routing="energy",
                              autoscaler=FleetAutoscaler(),
                              tracer=tracer)
    report = fleet.run(trace)
    run = analyze(tracer)
    _check(len(run) == len(report.records),
           f"fleet: {len(run)} journeys != {len(report.records)} "
           "records")
    run.reconcile(report, tol=1e-9)
    by_id = {r.request.request_id: r for r in report.records}
    saw_rtt = False
    for journey in run.journeys:
        journey.critical_path(tol=1e-9)
        record = by_id[journey.request_id]
        _check(journey.completion_ms == record.completion_ms,
               f"fleet journey completion diverges for "
               f"{journey.request_id}")
        names = {leg.name for leg in journey.legs}
        if "ingress" in names or "egress" in names:
            saw_rtt = True
    _check(saw_rtt, "fleet: no journey carries a network leg")
    return run


def _smoke_diff():
    """diff_runs: same-trace alignment + JSON round trip."""
    from repro.cluster import ClusterSimulator
    from repro.telemetry.__main__ import reference_workload

    registry, trace = reference_workload()
    runs = {}
    for policy in ("fifo", "energy"):
        tracer = Tracer()
        sim = ClusterSimulator(registry, num_accelerators=4,
                               policy=policy, tracer=tracer)
        report = sim.run(trace)
        run = analyze(tracer)
        run.reconcile(report, tol=1e-9)
        runs[policy] = (run, report)
    diff = diff_runs(runs["fifo"][0], runs["energy"][0])
    _check(diff.requests == len(trace), "diff dropped requests")
    _check(not diff.only_a and not diff.only_b,
           "same-trace diff found unmatched requests")
    # The attributed total-joules delta is exactly the ledger delta.
    ledger_delta = (runs["energy"][1].energy.total_mj
                    - runs["fifo"][1].energy.total_mj)
    gap = abs(diff.total_energy_mj["delta"] - ledger_delta)
    _check(gap <= 1e-9,
           f"diff joules delta off ledger by {gap:.3e}")
    round_trip = RegressionReport.from_json(diff.to_json())
    _check(round_trip.to_json() == diff.to_json(),
           "RegressionReport JSON round trip is lossy")
    return diff


def run_smoke(verbose=True):
    """End-to-end analysis self-check; returns the diff report."""
    with tempfile.TemporaryDirectory(prefix="repro_analysis_") as tmp:
        _smoke_cluster(tmp)
    fleet_run = _smoke_fleet()
    diff = _smoke_diff()
    if verbose:
        print(render_hot_paths(fleet_run, limit=8))
        print()
        print(diff.render())
    return diff


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.analysis",
        description="Stitch span logs into per-request journeys, "
                    "profiles, and run-to-run diffs")
    parser.add_argument("spans", nargs="?", metavar="SPANS.jsonl",
                        help="JSONL span log to analyze")
    parser.add_argument("--journeys", metavar="OUT.jsonl",
                        help="write stitched journeys as JSONL")
    parser.add_argument("--critical-path", action="store_true",
                        help="print the hot-path table and the worst "
                             "critical paths")
    parser.add_argument("--flame", metavar="OUT.txt",
                        help="write a collapsed-stack flamegraph file")
    parser.add_argument("--flame-weight", default="time",
                        choices=("time", "energy"))
    parser.add_argument("--waterfall", nargs="?", const="__worst__",
                        metavar="RID",
                        help="render one request's waterfall "
                             "(default: the slowest request)")
    parser.add_argument("--diff", nargs=2, metavar=("A", "B"),
                        help="diff two span logs of the same trace")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of "
                             "tables")
    parser.add_argument("--top", type=int, default=5,
                        help="critical paths to print (default 5)")
    parser.add_argument("--smoke", action="store_true",
                        help="run the analysis self-check gate")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    if not (args.smoke or args.spans or args.diff):
        parser.error("nothing to do; pass SPANS.jsonl, --diff A B, "
                     "or --smoke")
    try:
        if args.smoke:
            run_smoke(verbose=not args.quiet)
            if not args.quiet:
                print("\ntrace analysis smoke: OK")
        if args.diff:
            diff = diff_runs(analyze(args.diff[0]),
                             analyze(args.diff[1]))
            print(diff.to_json() if args.json else diff.render())
        if args.spans:
            run = analyze(args.spans)
            for journey in run.journeys:
                journey.critical_path(tol=1e-9)
            if args.journeys:
                count = run.to_jsonl(args.journeys)
                if not args.quiet:
                    print(f"wrote {count} journeys to {args.journeys}")
            if args.flame:
                count = write_flamegraph(run, args.flame,
                                         weight=args.flame_weight)
                if not args.quiet:
                    print(f"wrote {count} stacks to {args.flame}")
            if args.critical_path:
                print(render_hot_paths(run))
                worst = sorted(run.journeys,
                               key=lambda j: -j.time_in_system_ms)
                for journey in worst[:args.top]:
                    path = journey.critical_path()
                    if args.json:
                        print(json.dumps(path, sort_keys=True))
                    else:
                        print(f"\n{render_waterfall(journey)}")
            if args.waterfall is not None:
                if args.waterfall == "__worst__":
                    journey = max(run.journeys,
                                  key=lambda j: j.time_in_system_ms)
                else:
                    rid = args.waterfall
                    journey = run.by_request.get(rid)
                    if journey is None:
                        try:
                            journey = run.by_request.get(int(rid))
                        except ValueError:
                            pass
                    if journey is None:
                        raise TelemetryError(
                            f"no journey for request {rid!r}")
                print(json.dumps(waterfall_json(journey),
                                 sort_keys=True)
                      if args.json else render_waterfall(journey))
            if not (args.journeys or args.flame or args.critical_path
                    or args.waterfall is not None):
                # Bare span log: the hot-path table is the overview.
                print(render_hot_paths(run))
    except (AssertionError, ReproError, OSError) as exc:
        print(f"RUN FAILED: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
