"""Span-log exporters: Chrome trace-event JSON and JSONL.

Two interchangeable on-disk forms of one traced run:

* **JSONL span log** — one :class:`~repro.telemetry.Span` dict per
  line, the tracer's own spill format
  (:func:`write_spans_jsonl` / :func:`read_spans_jsonl` /
  :func:`iter_spans_jsonl`). This is the lossless form the
  ``python -m repro.telemetry`` CLI replays.
* **Chrome trace-event JSON** — the ``{"traceEvents": [...]}`` format
  Perfetto (https://ui.perfetto.dev) and ``chrome://tracing`` load
  directly (:func:`chrome_trace` / :func:`write_chrome_trace`). Track
  scopes become processes, lanes become threads, complete spans become
  ``"X"`` events and instants ``"i"`` events; ``energy_mj`` and span
  args ride along in ``args`` so the UI shows them on click.

Everything is deterministic: events are emitted in a canonical sort
(timestamp, pid, tid, name), pids/tids are assigned by sorted track
name, and timestamps are exact ``ms * 1000`` microsecond conversions —
the golden-schema test pins the output byte-for-byte on a reference
scenario.
"""

from __future__ import annotations

import json

from repro.errors import TelemetryError
from repro.telemetry.tracer import Span, Tracer

#: ``ph`` values this exporter emits (the golden schema test pins them):
#: complete spans, instant events, and the process/thread-name metadata.
CHROME_PHASES = ("X", "i", "M")


def _spans_of(source):
    """Accept a Tracer, an iterable of Spans, or a JSONL path."""
    if isinstance(source, Tracer):
        return source.iter_spans()
    if isinstance(source, str):
        return iter_spans_jsonl(source)
    return iter(source)


# -- JSONL span log ----------------------------------------------------------------


def write_spans_jsonl(source, path):
    """Stream every span of ``source`` to ``path``; returns the count."""
    count = 0
    with open(path, "w", encoding="utf-8") as f:
        for span in _spans_of(source):
            f.write(json.dumps(span.to_dict(), sort_keys=True))
            f.write("\n")
            count += 1
    return count


def iter_spans_jsonl(path):
    """Yield :class:`Span` rows from a JSONL span log, in file order."""
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TelemetryError(
                    f"{path}:{lineno}: not a JSON span row ({exc})")
            yield Span.from_dict(row)


def read_spans_jsonl(path):
    """Load a whole JSONL span log into memory."""
    return list(iter_spans_jsonl(path))


# -- Chrome trace-event JSON -------------------------------------------------------


def chrome_trace(source):
    """Build the Perfetto-loadable trace dict for ``source``.

    Track names sort into stable pid/tid assignments: each distinct
    scope (the part before the first ``/``) is one process, each full
    track one thread inside it. Metadata events name both, then the
    span events follow in (ts, pid, tid, name) order.
    """
    spans = list(_spans_of(source))
    tracks = sorted({s.track for s in spans})
    scopes = sorted({t.split("/", 1)[0] for t in tracks})
    pid_of = {scope: i + 1 for i, scope in enumerate(scopes)}
    tid_of = {track: i + 1 for i, track in enumerate(tracks)}

    events = []
    for scope in scopes:
        events.append({"ph": "M", "name": "process_name",
                       "pid": pid_of[scope], "tid": 0,
                       "args": {"name": scope}})
    for track in tracks:
        events.append({"ph": "M", "name": "thread_name",
                       "pid": pid_of[track.split("/", 1)[0]],
                       "tid": tid_of[track], "args": {"name": track}})

    rows = []
    for span in spans:
        scope = span.track.split("/", 1)[0]
        args = dict(span.args) if span.args else {}
        if span.energy_mj:
            args["energy_mj"] = span.energy_mj
        event = {"name": span.name, "cat": span.cat,
                 "pid": pid_of[scope], "tid": tid_of[span.track],
                 "ts": span.start_ms * 1000.0}
        if span.dur_ms is None:
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped instant
        else:
            event["ph"] = "X"
            event["dur"] = span.dur_ms * 1000.0
        if args:
            event["args"] = args
        rows.append(event)
    rows.sort(key=lambda e: (e["ts"], e["pid"], e["tid"], e["name"]))
    return {"traceEvents": events + rows, "displayTimeUnit": "ms"}


def write_chrome_trace(source, path):
    """Write the Perfetto-loadable trace JSON; returns the event count."""
    trace = chrome_trace(source)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(trace, f, sort_keys=True)
    return len(trace["traceEvents"])


def validate_chrome_trace(trace):
    """Schema-check a Chrome trace dict (the export contract).

    Every event must carry the required keys for its phase, phases must
    come from :data:`CHROME_PHASES`, timestamps must be non-negative
    numbers, and every (pid, tid) must be named by metadata. Raises
    :class:`~repro.errors.TelemetryError` on the first violation;
    returns the number of non-metadata events otherwise.
    """
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise TelemetryError("chrome trace must carry 'traceEvents'")
    named_pids, named_tids = set(), set()
    count = 0
    for event in trace["traceEvents"]:
        ph = event.get("ph")
        if ph not in CHROME_PHASES:
            raise TelemetryError(f"unexpected phase {ph!r} in {event!r}")
        for key in ("name", "pid", "tid"):
            if key not in event:
                raise TelemetryError(f"event missing {key!r}: {event!r}")
        if ph == "M":
            if event["name"] == "process_name":
                named_pids.add(event["pid"])
            elif event["name"] == "thread_name":
                named_tids.add((event["pid"], event["tid"]))
            continue
        count += 1
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise TelemetryError(f"bad timestamp in {event!r}")
        if "cat" not in event:
            raise TelemetryError(f"span event missing cat: {event!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise TelemetryError(f"bad duration in {event!r}")
        if event["pid"] not in named_pids:
            raise TelemetryError(
                f"pid {event['pid']} has no process_name metadata")
        if (event["pid"], event["tid"]) not in named_tids:
            raise TelemetryError(
                f"tid {event['tid']} has no thread_name metadata")
    return count
