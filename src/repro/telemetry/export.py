"""Span-log exporters: Chrome trace-event JSON and JSONL.

Two interchangeable on-disk forms of one traced run:

* **JSONL span log** — one :class:`~repro.telemetry.Span` dict per
  line, the tracer's own spill format
  (:func:`write_spans_jsonl` / :func:`read_spans_jsonl` /
  :func:`iter_spans_jsonl`). This is the lossless form the
  ``python -m repro.telemetry`` CLI replays.
* **Chrome trace-event JSON** — the ``{"traceEvents": [...]}`` format
  Perfetto (https://ui.perfetto.dev) and ``chrome://tracing`` load
  directly (:func:`chrome_trace` / :func:`write_chrome_trace`). Track
  scopes become processes, lanes become threads, complete spans become
  ``"X"`` events and instants ``"i"`` events; ``energy_mj`` and span
  args ride along in ``args`` so the UI shows them on click.

Everything is deterministic: events are emitted in a canonical sort
(timestamp, pid, tid, name), pids/tids are assigned by sorted track
name, and timestamps are exact ``ms * 1000`` microsecond conversions —
the golden-schema test pins the output byte-for-byte on a reference
scenario.
"""

from __future__ import annotations

import json

from repro.errors import TelemetryError
from repro.telemetry.tracer import Span, Tracer, jsonable_args

#: ``ph`` values this exporter emits (the golden schema test pins them):
#: complete spans, instant events, process/thread-name metadata, and the
#: flow triplet (start / step / finish) linking one request's journey.
CHROME_PHASES = ("X", "i", "M", "s", "t", "f")


def _spans_of(source):
    """Accept a Tracer, an iterable of Spans, or a JSONL path."""
    if isinstance(source, Tracer):
        return source.iter_spans()
    if isinstance(source, str):
        return iter_spans_jsonl(source)
    return iter(source)


# -- JSONL span log ----------------------------------------------------------------


def write_spans_jsonl(source, path):
    """Stream every span of ``source`` to ``path``; returns the count."""
    count = 0
    with open(path, "w", encoding="utf-8") as f:
        for span in _spans_of(source):
            f.write(json.dumps(span.to_dict(), sort_keys=True))
            f.write("\n")
            count += 1
    return count


def iter_spans_jsonl(path):
    """Yield :class:`Span` rows from a JSONL span log, in file order."""
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TelemetryError(
                    f"{path}:{lineno}: not a JSON span row ({exc})")
            yield Span.from_dict(row)


def read_spans_jsonl(path):
    """Load a whole JSONL span log into memory."""
    return list(iter_spans_jsonl(path))


# -- Chrome trace-event JSON -------------------------------------------------------


def _journey_ids(args):
    """Request ids a complete span is part of (``rid``/``request``/``rids``)."""
    out = []
    if "rid" in args:
        out.append(args["rid"])
    elif "request" in args:
        out.append(args["request"])
    rids = args.get("rids")
    if rids:
        out.extend(rids)
    return out


def chrome_trace(source):
    """Build the Perfetto-loadable trace dict for ``source``.

    Track names sort into stable pid/tid assignments: each distinct
    scope (the part before the first ``/``) is one process, each full
    track one thread inside it. Metadata events name both, then the
    span events follow in (ts, pid, tid, name) order.

    Complete spans that carry request ids (``rid``, ``request``, or a
    ``rids`` list in their args) additionally anchor **flow events**:
    for every request touching two or more such spans, a ``ph: "s"``
    event opens the flow on the first span, ``"t"`` steps through the
    middle ones, and ``"f"`` (with ``bp: "e"``) closes it on the last —
    so Perfetto draws each request's journey as arrows across the
    batch-former, queue, accelerator, and network tracks.
    """
    spans = list(_spans_of(source))
    tracks = sorted({s.track for s in spans})
    scopes = sorted({t.split("/", 1)[0] for t in tracks})
    pid_of = {scope: i + 1 for i, scope in enumerate(scopes)}
    tid_of = {track: i + 1 for i, track in enumerate(tracks)}

    events = []
    for scope in scopes:
        events.append({"ph": "M", "name": "process_name",
                       "pid": pid_of[scope], "tid": 0,
                       "args": {"name": scope}})
    for track in tracks:
        events.append({"ph": "M", "name": "thread_name",
                       "pid": pid_of[track.split("/", 1)[0]],
                       "tid": tid_of[track], "args": {"name": track}})

    rows = []
    anchors = {}  # request id -> complete-span events on its journey
    for span in spans:
        scope = span.track.split("/", 1)[0]
        args = dict(jsonable_args(span.args)) if span.args else {}
        if span.energy_mj:
            args["energy_mj"] = span.energy_mj
        event = {"name": span.name, "cat": span.cat,
                 "pid": pid_of[scope], "tid": tid_of[span.track],
                 "ts": span.start_ms * 1000.0}
        if span.dur_ms is None:
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped instant
        else:
            event["ph"] = "X"
            event["dur"] = span.dur_ms * 1000.0
            for rid in _journey_ids(args):
                anchors.setdefault(rid, []).append(event)
        if args:
            event["args"] = args
        rows.append(event)

    # Flow events: one s -> t... -> f chain per request, anchored on the
    # complete spans that name it. Single-span requests draw no arrow.
    order = ("ts", "pid", "tid", "name")
    for rid, chain in anchors.items():
        if len(chain) < 2:
            continue
        chain.sort(key=lambda e: tuple(e[k] for k in order))
        last = len(chain) - 1
        for i, anchor in enumerate(chain):
            flow = {"ph": "s" if i == 0 else "f" if i == last else "t",
                    "name": "journey", "cat": "journey", "id": str(rid),
                    "pid": anchor["pid"], "tid": anchor["tid"],
                    "ts": anchor["ts"]}
            if i == last:
                flow["bp"] = "e"  # bind to the enclosing slice's end
            rows.append(flow)
    rows.sort(key=lambda e: (e["ts"], e["pid"], e["tid"], e["name"],
                             e["ph"], e.get("id", "")))
    return {"traceEvents": events + rows, "displayTimeUnit": "ms"}


def write_chrome_trace(source, path):
    """Write the Perfetto-loadable trace JSON; returns the event count."""
    trace = chrome_trace(source)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(trace, f, sort_keys=True)
    return len(trace["traceEvents"])


def validate_chrome_trace(trace):
    """Schema-check a Chrome trace dict (the export contract).

    Every event must carry the required keys for its phase, phases must
    come from :data:`CHROME_PHASES`, timestamps must be non-negative
    numbers, every (pid, tid) must be named by metadata, and flow
    events (``s``/``t``/``f``) must carry an ``id`` whose chain opens
    with ``s`` and closes with ``f``. Raises
    :class:`~repro.errors.TelemetryError` on the first violation;
    returns the number of span/instant events (flow events link spans,
    they don't add to the count).
    """
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise TelemetryError("chrome trace must carry 'traceEvents'")
    named_pids, named_tids = set(), set()
    flows = {}
    count = 0
    for event in trace["traceEvents"]:
        ph = event.get("ph")
        if ph not in CHROME_PHASES:
            raise TelemetryError(f"unexpected phase {ph!r} in {event!r}")
        for key in ("name", "pid", "tid"):
            if key not in event:
                raise TelemetryError(f"event missing {key!r}: {event!r}")
        if ph == "M":
            if event["name"] == "process_name":
                named_pids.add(event["pid"])
            elif event["name"] == "thread_name":
                named_tids.add((event["pid"], event["tid"]))
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise TelemetryError(f"bad timestamp in {event!r}")
        if "cat" not in event:
            raise TelemetryError(f"span event missing cat: {event!r}")
        if ph in ("s", "t", "f"):
            if "id" not in event:
                raise TelemetryError(f"flow event missing id: {event!r}")
            flows.setdefault(event["id"], []).append(ph)
        else:
            count += 1
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise TelemetryError(f"bad duration in {event!r}")
        if event["pid"] not in named_pids:
            raise TelemetryError(
                f"pid {event['pid']} has no process_name metadata")
        if (event["pid"], event["tid"]) not in named_tids:
            raise TelemetryError(
                f"tid {event['tid']} has no thread_name metadata")
    for flow_id, phases in flows.items():
        if phases.count("s") != 1 or phases.count("f") != 1 \
                or phases[0] != "s" or phases[-1] != "f":
            raise TelemetryError(
                f"flow {flow_id!r} is not one s..f chain: {phases}")
    return count
