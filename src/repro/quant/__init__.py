"""Floating-point quantization (AdaptivFloat-style FP8)."""

from repro.quant.floatformat import FloatFormat, search_exponent_bits
from repro.quant.quantizer import (
    Quantizer,
    default_skip_predicate,
    int8_symmetric_quantize,
    quantize_model_for_eval,
)

__all__ = [
    "FloatFormat",
    "search_exponent_bits",
    "Quantizer",
    "default_skip_predicate",
    "int8_symmetric_quantize",
    "quantize_model_for_eval",
]
