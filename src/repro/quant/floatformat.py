"""Reduced-precision floating-point formats (paper Sec. 3.4).

EdgeBERT quantizes weights and activations to 8-bit floats — 1 sign bit,
4 exponent bits, 3 mantissa bits — with the exponent *bias* chosen per
tensor ("the exponent being scaled at a per-layer granularity"), following
AdaptivFloat (Tambe et al., cited as [72]). Floating point is preferred
over int8 because NLP weight distributions have outliers that need the
extra dynamic range.

The format model here uses the full exponent field for normal values (no
inf/NaN encodings, as is standard for DNN inference formats) and supports
subnormals, so the representable set is exactly:

    ±(k / 2^m) · 2^(1 - bias)                for field = 0 (subnormal)
    ±(1 + k / 2^m) · 2^(field - bias)        for field in [1, 2^e - 1]
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError


@dataclass(frozen=True)
class FloatFormat:
    """A (sign, exponent, mantissa) float format with an adjustable bias."""

    total_bits: int = 8
    exponent_bits: int = 4

    def __post_init__(self):
        if self.total_bits < 3:
            raise QuantizationError("total_bits must be >= 3")
        if not 1 <= self.exponent_bits <= self.total_bits - 2:
            raise QuantizationError(
                "exponent_bits must leave a sign bit and >= 1 mantissa bit"
            )

    @property
    def mantissa_bits(self):
        return self.total_bits - 1 - self.exponent_bits

    @property
    def standard_bias(self):
        """IEEE-style bias 2^(e-1) - 1."""
        return 2 ** (self.exponent_bits - 1) - 1

    def exponent_range(self, bias=None):
        """(E_min, E_max) of *normal* values for a given bias."""
        bias = self.standard_bias if bias is None else int(bias)
        return 1 - bias, (2**self.exponent_bits - 1) - bias

    def max_value(self, bias=None):
        """Largest representable magnitude."""
        _, e_max = self.exponent_range(bias)
        return float((2.0 - 2.0 ** (-self.mantissa_bits)) * 2.0**e_max)

    def min_normal(self, bias=None):
        """Smallest positive normal magnitude."""
        e_min, _ = self.exponent_range(bias)
        return float(2.0**e_min)

    def min_subnormal(self, bias=None):
        """Smallest positive representable magnitude."""
        e_min, _ = self.exponent_range(bias)
        return float(2.0 ** (e_min - self.mantissa_bits))

    def adaptive_bias(self, values):
        """Per-tensor bias covering the data's dynamic range.

        Chooses the bias so that the top of the exponent range sits at the
        data's maximum magnitude (AdaptivFloat rule). Falls back to the
        standard bias for all-zero tensors.
        """
        values = np.asarray(values)
        max_abs = float(np.max(np.abs(values))) if values.size else 0.0
        if max_abs == 0.0 or not np.isfinite(max_abs):
            return self.standard_bias
        # Smallest e_max with (2 - 2^-m)·2^e_max >= max_abs, so the top of
        # the range *covers* the data's largest magnitude.
        top_significand = 2.0 - 2.0 ** (-self.mantissa_bits)
        needed_e_max = int(np.ceil(np.log2(max_abs / top_significand)))
        return (2**self.exponent_bits - 1) - needed_e_max

    def quantize(self, values, bias=None):
        """Round ``values`` to the nearest representable number.

        Overflow clamps to ±max; ties round half-to-even (numpy default).
        """
        values = np.asarray(values, dtype=np.float64)
        if bias is None:
            bias = self.standard_bias
        e_min, e_max = self.exponent_range(bias)
        m = self.mantissa_bits

        sign = np.sign(values)
        magnitude = np.abs(values)
        # Exponent of each value, clamped into the normal range; zeros and
        # subnormal-range values use e_min (subnormal spacing).
        with np.errstate(divide="ignore"):
            raw_e = np.floor(np.log2(magnitude, where=magnitude > 0,
                                     out=np.full_like(magnitude, e_min)))
        exponent = np.clip(raw_e, e_min, e_max)
        spacing = 2.0 ** (exponent - m)
        quantized = np.round(magnitude / spacing) * spacing
        quantized = np.minimum(quantized, self.max_value(bias))
        return sign * quantized

    def quantization_error(self, values, bias=None):
        """Mean absolute quantization error for ``values``."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return 0.0
        return float(np.mean(np.abs(values - self.quantize(values, bias))))

    # -- bit-level encoding (used by the eNVM store and HW buffers) ---------

    def encode_bits(self, values, bias=None):
        """Encode to integer words: ``sign | exponent | mantissa`` (MSB→LSB).

        ``values`` should already be representable (i.e. pass through
        :meth:`quantize` first); out-of-grid inputs are quantized here as a
        safety net. Returns an unsigned integer array (dtype uint32, low
        ``total_bits`` significant).
        """
        if bias is None:
            bias = self.standard_bias
        values = self.quantize(values, bias)
        m = self.mantissa_bits
        e_min, e_max = self.exponent_range(bias)

        sign = (values < 0).astype(np.uint32)
        magnitude = np.abs(values)
        with np.errstate(divide="ignore"):
            raw_e = np.floor(np.log2(magnitude, where=magnitude > 0,
                                     out=np.full_like(magnitude, e_min)))
        exponent = np.clip(raw_e, e_min, e_max)
        is_subnormal = magnitude < self.min_normal(bias)
        exponent = np.where(is_subnormal, e_min, exponent)
        field = np.where(is_subnormal, 0, exponent + bias).astype(np.int64)
        scale = 2.0 ** (exponent - m)
        significand = np.round(magnitude / scale).astype(np.int64)
        mantissa = np.where(is_subnormal, significand,
                            significand - (1 << m))
        # Mantissa rounding may carry into the exponent.
        carry = mantissa >= (1 << m)
        field = np.where(carry, field + 1, field)
        mantissa = np.where(carry, 0, mantissa)
        field = np.clip(field, 0, (1 << self.exponent_bits) - 1)
        mantissa = np.clip(mantissa, 0, (1 << m) - 1)
        word = ((sign.astype(np.uint32) << (self.total_bits - 1))
                | (field.astype(np.uint32) << m)
                | mantissa.astype(np.uint32))
        return word

    def decode_bits(self, words, bias=None):
        """Decode integer words produced by :meth:`encode_bits`."""
        if bias is None:
            bias = self.standard_bias
        words = np.asarray(words, dtype=np.uint32)
        m = self.mantissa_bits
        sign = (words >> (self.total_bits - 1)) & 1
        field = (words >> m) & ((1 << self.exponent_bits) - 1)
        mantissa = (words & ((1 << m) - 1)).astype(np.float64)
        e_min, _ = self.exponent_range(bias)
        subnormal = field == 0
        exponent = np.where(subnormal, e_min, field.astype(np.int64) - bias)
        significand = np.where(subnormal, mantissa / (1 << m),
                               1.0 + mantissa / (1 << m))
        values = significand * (2.0**exponent)
        return np.where(sign == 1, -values, values)


def search_exponent_bits(values, total_bits=8, candidates=None):
    """Find the exponent width minimizing quantization error.

    Reproduces the paper's search ("we also performed a search on the
    optimal exponent bit width"): each candidate format quantizes with its
    adaptive per-tensor bias and the lowest-MAE width wins (ties go to the
    smaller exponent).
    """
    values = np.asarray(values, dtype=np.float64)
    if candidates is None:
        candidates = range(1, total_bits - 1)
    best_bits, best_err = None, None
    for exp_bits in candidates:
        fmt = FloatFormat(total_bits=total_bits, exponent_bits=exp_bits)
        err = fmt.quantization_error(values, fmt.adaptive_bias(values))
        if best_err is None or err < best_err - 1e-15:
            best_bits, best_err = exp_bits, err
    return best_bits, best_err
