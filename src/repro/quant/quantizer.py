"""Model-level quantization: apply FP8 to all weights (and activations).

At evaluation time the paper quantizes *both* weights and activations to
8-bit floats. Weight quantization is applied in-place to a model's
parameters (per-tensor adaptive exponent bias); activation quantization is
exposed as a functional hook the hardware simulator and evaluation paths
call between layers.
"""

from __future__ import annotations

import numpy as np

from repro.config import QuantConfig
from repro.quant.floatformat import FloatFormat


class Quantizer:
    """Applies a :class:`QuantConfig` to arrays and whole models."""

    def __init__(self, config=None):
        self.config = config or QuantConfig()
        self.fmt = FloatFormat(total_bits=self.config.total_bits,
                               exponent_bits=self.config.exponent_bits)

    def bias_for(self, values):
        """Exponent bias used for ``values`` under this config."""
        if self.config.per_tensor_bias:
            return self.fmt.adaptive_bias(values)
        return self.fmt.standard_bias

    def quantize_array(self, values):
        """Quantize an ndarray, returning ``(quantized, bias)``."""
        bias = self.bias_for(values)
        return self.fmt.quantize(values, bias), bias

    def quantize_model(self, model, skip_predicate=None):
        """Quantize every parameter of ``model`` in-place.

        ``skip_predicate(name)`` may exclude parameters (e.g. the adaptive
        span scalars, which are control state rather than datapath values).
        Returns a dict name → exponent bias for the record.
        """
        biases = {}
        for name, param in model.named_parameters():
            if skip_predicate is not None and skip_predicate(name):
                continue
            quantized, bias = self.quantize_array(param.data)
            param.data = quantized
            biases[name] = bias
        return biases

    def activation_hook(self):
        """Return f(ndarray) -> ndarray quantizing activations."""

        def hook(values):
            quantized, _ = self.quantize_array(values)
            return quantized

        return hook


def default_skip_predicate(name):
    """Parameters that stay full-precision: span control scalars."""
    return name.endswith("span.z")


def quantize_model_for_eval(model, config=None):
    """Standard EdgeBERT evaluation-time quantization (Fig. 4 legend)."""
    quantizer = Quantizer(config)
    return quantizer.quantize_model(model, skip_predicate=default_skip_predicate)


def int8_symmetric_quantize(values):
    """Baseline Q8BERT-style symmetric int8 quantization (for comparison).

    Used by tests/benches to demonstrate the dynamic-range argument of
    Sec. 3.4 (floating point beats int8 on outlier-heavy tensors).
    """
    values = np.asarray(values, dtype=np.float64)
    max_abs = float(np.max(np.abs(values))) if values.size else 0.0
    if max_abs == 0.0:
        return values.copy(), 1.0
    scale = max_abs / 127.0
    return np.clip(np.round(values / scale), -127, 127) * scale, scale
