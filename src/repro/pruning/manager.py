"""Pruning orchestration across a whole model (paper Sec. 3.3 / Fig. 4).

The manager wires the paper's pruning policy onto an :class:`AlbertModel`:

* the shared word-embedding table is magnitude-pruned (one shot — it is
  frozen during fine-tuning and must stay identical across tasks);
* every encoder Linear weight is pruned along a cubic sparsity schedule,
  by movement pruning (score tensors + straight-through masks) or by
  iterative magnitude pruning, per the configuration.

Off-ramp classifiers and layer-norm/bias parameters are never pruned.
"""

from __future__ import annotations

import numpy as np

from repro.model.modules import Linear
from repro.pruning.magnitude import (
    actual_sparsity,
    magnitude_keep_mask,
    prune_embeddings,
)
from repro.pruning.movement import MovementScore
from repro.pruning.schedule import cubic_sparsity


def _encoder_linears(model):
    """Unique (name, Linear) pairs inside the encoder layers."""
    seen = set()
    result = []
    for i, layer in enumerate(model.layers):
        for attr, value in vars(layer).items():
            if isinstance(value, Linear) and id(value) not in seen:
                seen.add(id(value))
                result.append((f"layers.{i}.{attr}", value))
            elif hasattr(value, "__dict__"):
                for sub_attr, sub in vars(value).items():
                    if isinstance(sub, Linear) and id(sub) not in seen:
                        seen.add(id(sub))
                        result.append((f"layers.{i}.{attr}.{sub_attr}", sub))
    return result


class PruningManager:
    """Drives embedding + encoder pruning through a training run."""

    def __init__(self, model, config, total_steps):
        self.model = model
        self.config = config
        self.total_steps = max(int(total_steps), 1)
        self._linears = _encoder_linears(model)
        self._movement = {}
        self._embedding_mask = None
        self._finalized = False
        if config.encoder_method == "movement":
            for name, linear in self._linears:
                score = MovementScore(linear.weight, name=name)
                linear.set_weight_hook(score.hook())
                self._movement[name] = score

    # -- parameters the optimizer must also update -----------------------------

    def score_parameters(self):
        """Movement-score tensors (empty for magnitude pruning)."""
        return [score.scores for score in self._movement.values()]

    # -- lifecycle ------------------------------------------------------------

    def prune_embeddings_once(self):
        """Apply the one-shot magnitude pruning of the shared embeddings."""
        self._embedding_mask = prune_embeddings(
            self.model, self.config.embedding_sparsity)
        return self._embedding_mask

    def step(self, step):
        """Advance the cubic schedule at training ``step``."""
        sparsity = cubic_sparsity(
            step, self.total_steps, self.config.encoder_sparsity,
            begin_frac=self.config.schedule_begin_frac,
            end_frac=self.config.schedule_end_frac,
        )
        if self.config.encoder_method == "movement":
            for score in self._movement.values():
                score.sparsity = sparsity
        else:
            for _, linear in self._linears:
                mask = magnitude_keep_mask(linear.weight.data, sparsity)
                linear.weight.data = linear.weight.data * mask
        return sparsity

    def finalize(self):
        """Bake masks into weights and remove forward hooks."""
        if self._finalized:
            return
        if self.config.encoder_method == "movement":
            for name, linear in self._linears:
                self._movement[name].finalize()
                linear.set_weight_hook(None)
        else:
            for _, linear in self._linears:
                mask = magnitude_keep_mask(linear.weight.data,
                                           self.config.encoder_sparsity)
                linear.weight.data = linear.weight.data * mask
        self._finalized = True

    # -- reporting --------------------------------------------------------------

    def encoder_sparsity(self):
        """Measured zero fraction across encoder Linear weights."""
        weights = [linear.weight.data for _, linear in self._linears]
        total = sum(w.size for w in weights)
        zeros = sum(int((w == 0).sum()) for w in weights)
        return zeros / total if total else 0.0

    def embedding_sparsity(self):
        """Measured zero fraction of the word-embedding table."""
        return actual_sparsity(self.model.embeddings.word.weight.data)

    def summary(self):
        """Dict of measured sparsities (for Table 3)."""
        return {
            "embedding_sparsity": self.embedding_sparsity(),
            "encoder_sparsity": self.encoder_sparsity(),
            "method": self.config.encoder_method,
        }


def measured_encoder_sparsity(model):
    """Zero fraction across a model's encoder Linear weights."""
    linears = _encoder_linears(model)
    total = sum(linear.weight.data.size for _, linear in linears)
    zeros = sum(int((linear.weight.data == 0).sum()) for _, linear in linears)
    return zeros / total if total else 0.0


def measured_embedding_density(model):
    """Non-zero fraction of the word-embedding table (Table 3's 40 %)."""
    table = model.embeddings.word.weight.data
    return float((table != 0).mean()) if table.size else 0.0
