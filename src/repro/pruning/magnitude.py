"""Magnitude pruning (paper Sec. 3.3; Han et al.).

Weights with the smallest absolute values are zeroed. EdgeBERT always
applies magnitude pruning to the *embedding* layer (the weights are frozen
and task-shared, so the mask is computed once and enforces uniformity
across NLP domains), and optionally to encoder weights as the alternative
to movement pruning.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SparsityError


def magnitude_keep_mask(values, sparsity):
    """Boolean mask keeping the largest-|value| fraction ``1 - sparsity``.

    Exactly ``floor(sparsity * size)`` entries are dropped; ties are broken
    by flat index for determinism.
    """
    values = np.asarray(values)
    if not 0.0 <= sparsity < 1.0:
        raise SparsityError(f"sparsity must be in [0, 1); got {sparsity}")
    n_drop = int(np.floor(sparsity * values.size))
    if n_drop == 0:
        return np.ones(values.shape, dtype=bool)
    flat = np.abs(values).reshape(-1)
    # argsort is stable, so equal magnitudes drop lowest-index first.
    drop_idx = np.argsort(flat, kind="stable")[:n_drop]
    mask = np.ones(flat.size, dtype=bool)
    mask[drop_idx] = False
    return mask.reshape(values.shape)


def prune_by_magnitude(values, sparsity):
    """Return a pruned copy of ``values`` at the requested sparsity."""
    return np.asarray(values) * magnitude_keep_mask(values, sparsity)


def prune_embeddings(model, sparsity):
    """One-shot magnitude pruning of the shared word-embedding table.

    The paper's rule: magnitude pruning for embeddings (frozen, shared
    across tasks) so the stored image is identical for every NLP domain.
    Modifies the model in-place and returns the keep mask.
    """
    table = model.embeddings.word.weight
    mask = magnitude_keep_mask(table.data, sparsity)
    table.data = table.data * mask
    return mask


def actual_sparsity(values):
    """Fraction of exactly-zero entries."""
    values = np.asarray(values)
    if values.size == 0:
        return 0.0
    return float((values == 0).mean())
