"""Sparsity schedules for gradual pruning during fine-tuning."""

from __future__ import annotations

from repro.errors import ScheduleError


def cubic_sparsity(step, total_steps, final_sparsity, begin_frac=0.2,
                   end_frac=0.8):
    """Zhu & Gupta cubic sparsity ramp.

    Sparsity is 0 before ``begin_frac * total_steps``, rises along
    ``s_f * (1 - (1 - t)^3)`` and holds at ``final_sparsity`` after
    ``end_frac * total_steps``. This is the schedule both pruning methods
    use during EdgeBERT's phase-1 fine-tuning.
    """
    if total_steps <= 0:
        raise ScheduleError("total_steps must be positive")
    if not 0.0 <= final_sparsity < 1.0:
        raise ScheduleError("final_sparsity must be in [0, 1)")
    if not 0.0 <= begin_frac < end_frac <= 1.0:
        raise ScheduleError("need 0 <= begin_frac < end_frac <= 1")
    begin = begin_frac * total_steps
    end = end_frac * total_steps
    if step <= begin:
        return 0.0
    if step >= end:
        return float(final_sparsity)
    progress = (step - begin) / (end - begin)
    return float(final_sparsity * (1.0 - (1.0 - progress) ** 3))
