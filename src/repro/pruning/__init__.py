"""Network pruning: magnitude, movement, schedules, orchestration."""

from repro.pruning.magnitude import (
    actual_sparsity,
    magnitude_keep_mask,
    prune_by_magnitude,
    prune_embeddings,
)
from repro.pruning.manager import (
    PruningManager,
    measured_embedding_density,
    measured_encoder_sparsity,
)
from repro.pruning.movement import MovementScore, masked_by_scores, topk_keep_mask
from repro.pruning.schedule import cubic_sparsity

__all__ = [
    "actual_sparsity",
    "magnitude_keep_mask",
    "prune_by_magnitude",
    "prune_embeddings",
    "PruningManager",
    "measured_embedding_density",
    "measured_encoder_sparsity",
    "MovementScore",
    "masked_by_scores",
    "topk_keep_mask",
    "cubic_sparsity",
]
