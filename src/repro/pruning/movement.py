"""Movement pruning (paper Sec. 3.3; Sanh et al. 2020).

Movement pruning is *first-order*: each prunable weight matrix W gets a
score matrix S of the same shape; the forward pass uses
``W ⊙ TopK-mask(S)`` and the scores receive straight-through gradients
``∂L/∂S = ∂L/∂W_eff ⊙ W``. Weights that shrink toward zero during
fine-tuning accumulate negative movement and are dropped — which is why it
beats magnitude pruning in high-sparsity transfer-learning regimes.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor


def topk_keep_mask(scores, sparsity):
    """Keep-mask of the highest-score fraction ``1 - sparsity``."""
    return _topk_mask(scores, sparsity)


def _topk_mask(scores, sparsity):
    scores = np.asarray(scores)
    n_drop = int(np.floor(sparsity * scores.size))
    if n_drop == 0:
        return np.ones(scores.shape, dtype=bool)
    flat = scores.reshape(-1)
    drop_idx = np.argsort(flat, kind="stable")[:n_drop]
    mask = np.ones(flat.size, dtype=bool)
    mask[drop_idx] = False
    return mask.reshape(scores.shape)


def masked_by_scores(weight, scores, sparsity):
    """Differentiable ``W ⊙ TopK-mask(S)`` with straight-through scores.

    Forward: zero the weights whose score is in the lowest ``sparsity``
    fraction. Backward: the weight gradient flows only through kept
    entries, while the score gradient is the straight-through estimate
    ``grad ⊙ W`` over *all* entries (Sanh et al., Eq. 7).
    """
    mask = _topk_mask(scores.data, sparsity).astype(np.float64)
    out_data = weight.data * mask

    def backward(grad):
        if weight.requires_grad:
            weight._accumulate(grad * mask)
        if scores.requires_grad:
            scores._accumulate(grad * weight.data)

    return Tensor._from_op(out_data, (weight, scores), backward)


class MovementScore:
    """Owns the score tensor and current sparsity for one weight matrix."""

    def __init__(self, weight, name=""):
        self.weight = weight
        self.scores = Tensor(np.zeros_like(weight.data), requires_grad=True,
                             name=f"{name}.scores" if name else "scores")
        self.sparsity = 0.0

    def hook(self):
        """Weight hook for :meth:`repro.model.modules.Linear.set_weight_hook`."""

        def apply(weight):
            if self.sparsity <= 0.0:
                return weight
            return masked_by_scores(weight, self.scores, self.sparsity)

        return apply

    def keep_mask(self):
        """The current binary keep-mask derived from the scores."""
        return _topk_mask(self.scores.data, self.sparsity)

    def finalize(self):
        """Bake the mask into the weight data; returns the mask."""
        mask = self.keep_mask()
        self.weight.data = self.weight.data * mask
        return mask
