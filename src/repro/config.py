"""Central configuration dataclasses.

Three families of configuration flow through the library:

* **Model/training** (:class:`ModelConfig`, :class:`TrainConfig`) describe
  the ALBERT network and the two-phase EdgeBERT fine-tuning procedure.
* **Compression** (:class:`QuantConfig`, :class:`PruningConfig`) describe
  the floating-point quantization and pruning applied at evaluation and
  fine-tuning time.
* **Hardware** (:class:`HwConfig`, :class:`DvfsConfig`, :class:`EnvmConfig`)
  describe the simulated 12 nm accelerator, its DVFS subsystem, and the
  on-chip ReRAM used for the shared word embeddings.

Unit conventions used throughout the hardware layer: time in **ns**, energy
in **pJ**, power in **mW** (= pJ/ns), voltage in **V**, frequency in **GHz**
(= cycles/ns), area in **mm²**.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError

#: The four GLUE tasks the paper evaluates (largest corpora, all categories).
GLUE_TASKS = ("mnli", "qqp", "sst2", "qnli")

#: Number of classification labels for each evaluated task.
TASK_NUM_LABELS = {"mnli": 3, "qqp": 2, "sst2": 2, "qnli": 2}

#: Tasks whose inputs are sentence *pairs* (vs. single sentences).
TASK_IS_PAIR = {"mnli": True, "qqp": True, "sst2": False, "qnli": True}


@dataclass(frozen=True)
class ModelConfig:
    """Architecture of the ALBERT backbone plus its EdgeBERT extensions."""

    vocab_size: int = 1000
    embedding_size: int = 48  # ALBERT factorized embedding width (E)
    hidden_size: int = 96  # Transformer width (H)
    num_layers: int = 12
    num_heads: int = 12
    ffn_size: int = 384
    max_seq_len: int = 128
    num_labels: int = 2
    share_parameters: bool = True  # True = ALBERT, False = BERT
    use_adaptive_span: bool = True
    span_ramp: float = 16.0  # softness R of the adaptive-span mask ramp
    layer_norm_eps: float = 1e-5
    initializer_range: float = 0.02
    type_vocab_size: int = 2  # segment A/B embeddings for sentence pairs

    def __post_init__(self):
        if self.hidden_size % self.num_heads != 0:
            raise ConfigError(
                f"hidden_size {self.hidden_size} not divisible by "
                f"num_heads {self.num_heads}"
            )
        for name in ("vocab_size", "embedding_size", "hidden_size", "num_layers",
                     "num_heads", "ffn_size", "max_seq_len", "num_labels"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")

    @property
    def head_dim(self):
        """Per-head projection width (H / num_heads)."""
        return self.hidden_size // self.num_heads

    @classmethod
    def albert_base(cls, num_labels=2):
        """The paper's full-size ALBERT-base configuration."""
        return cls(
            vocab_size=30000,
            embedding_size=128,
            hidden_size=768,
            num_layers=12,
            num_heads=12,
            ffn_size=3072,
            max_seq_len=128,
            num_labels=num_labels,
        )

    @classmethod
    def tiny(cls, num_labels=2, num_layers=12):
        """Reduced-width config used by tests/benches (trains in seconds)."""
        return cls(num_labels=num_labels, num_layers=num_layers)

    def for_task(self, task):
        """Return a copy of this config with the task's label count."""
        if task not in TASK_NUM_LABELS:
            raise ConfigError(f"unknown task {task!r}; expected one of {GLUE_TASKS}")
        return replace(self, num_labels=TASK_NUM_LABELS[task])


@dataclass(frozen=True)
class PruningConfig:
    """Pruning targets for the two parameter partitions.

    The embedding layer is always magnitude-pruned (shared across tasks);
    encoder weights use either movement or magnitude pruning per task.
    """

    embedding_sparsity: float = 0.60
    encoder_sparsity: float = 0.50
    encoder_method: str = "movement"  # "movement" | "magnitude"
    # The ramp starts only after the model has had time to learn the task
    # (movement scores are uninformative until then) and ends with slack
    # for recovery at the final sparsity.
    schedule_begin_frac: float = 0.35
    schedule_end_frac: float = 0.85

    def __post_init__(self):
        for name in ("embedding_sparsity", "encoder_sparsity"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ConfigError(f"{name} must be in [0, 1); got {value}")
        if self.encoder_method not in ("movement", "magnitude"):
            raise ConfigError(f"unknown pruning method {self.encoder_method!r}")
        if not 0.0 <= self.schedule_begin_frac < self.schedule_end_frac <= 1.0:
            raise ConfigError("schedule fractions must satisfy 0 <= begin < end <= 1")


@dataclass(frozen=True)
class TrainConfig:
    """Two-phase EdgeBERT fine-tuning hyperparameters (paper Fig. 4)."""

    steps_phase1: int = 200  # KD + pruning + adaptive attention span
    steps_phase2: int = 100  # off-ramp (highway) fine-tuning, backbone frozen
    batch_size: int = 8
    learning_rate: float = 5e-4  # stable for the from-scratch tiny ALBERT
    weight_decay: float = 0.01
    kd_alpha: float = 0.5  # weight of distillation loss vs. hard CE
    kd_temperature: float = 2.0
    span_loss_coeff: float = 5.0  # pressure shrinking attention spans
    # Span parameters live on a token-count scale (0..max_seq_len), so they
    # get their own SGD optimizer with a much larger learning rate than the
    # ~0.02-scale weights (plain SGD so the step tracks the true gradient
    # balance between task loss and span penalty).
    span_learning_rate: float = 50.0
    # Fraction of phase-1 steps before span shrinking starts; attention has
    # to become useful before the penalty may prune it away.
    span_start_frac: float = 0.35
    grad_clip: float = 1.0
    seed: int = 0
    pruning: PruningConfig = field(default_factory=PruningConfig)

    def __post_init__(self):
        if self.steps_phase1 < 0 or self.steps_phase2 < 0:
            raise ConfigError("training step counts must be non-negative")
        if self.batch_size <= 0:
            raise ConfigError("batch_size must be positive")
        if not 0.0 <= self.kd_alpha <= 1.0:
            raise ConfigError("kd_alpha must be in [0, 1]")


@dataclass(frozen=True)
class QuantConfig:
    """8-bit floating-point quantization (paper Sec. 3.4).

    The paper searches the exponent width and lands on 4 exponent bits in an
    8-bit word, with per-layer exponent scaling (a per-tensor exponent bias).
    """

    total_bits: int = 8
    exponent_bits: int = 4
    per_tensor_bias: bool = True

    def __post_init__(self):
        if self.total_bits < 2:
            raise ConfigError("total_bits must be >= 2")
        if not 1 <= self.exponent_bits <= self.total_bits - 1:
            raise ConfigError(
                "exponent_bits must leave at least a sign bit: "
                f"got {self.exponent_bits} of {self.total_bits}"
            )

    @property
    def mantissa_bits(self):
        """Explicit mantissa bits (word = 1 sign + exponent + mantissa)."""
        return self.total_bits - 1 - self.exponent_bits


@dataclass(frozen=True)
class DvfsConfig:
    """DVFS subsystem: LDO + ADPLL + V/F operating-point table (Table 4)."""

    vdd_nominal: float = 0.80
    vdd_min: float = 0.50
    vdd_max: float = 0.80
    vdd_step: float = 0.025  # LDO 25 mV step
    vdd_standby: float = 0.50
    freq_max_ghz: float = 1.0  # at vdd_nominal
    ldo_slew_ns_per_50mv: float = 3.8
    ldo_peak_current_efficiency: float = 0.992
    ldo_max_load_ma: float = 200.0
    adpll_power_mw_at_1ghz: float = 2.46
    adpll_relock_ns: float = 100.0
    vt_volts: float = 0.30  # effective threshold voltage for the f(V) model
    alpha_velocity: float = 1.6  # velocity-saturation exponent in f(V)

    def __post_init__(self):
        if not (0 < self.vdd_min <= self.vdd_max):
            raise ConfigError("need 0 < vdd_min <= vdd_max")
        if self.vdd_step <= 0:
            raise ConfigError("vdd_step must be positive")
        if self.vdd_nominal < self.vdd_min or self.vdd_nominal > self.vdd_max:
            raise ConfigError("vdd_nominal must lie in [vdd_min, vdd_max]")
        if self.vt_volts >= self.vdd_min:
            raise ConfigError("vt_volts must be below vdd_min")


@dataclass(frozen=True)
class EnvmConfig:
    """On-chip ReRAM (eNVM) storage for the shared word embeddings (Sec. 4)."""

    data_bits_per_cell: int = 2  # MLC2 for non-zero embedding values
    mask_bits_per_cell: int = 1  # bitmask always in SLC
    capacity_mb: float = 2.0

    def __post_init__(self):
        if self.data_bits_per_cell not in (1, 2, 3):
            raise ConfigError("data_bits_per_cell must be 1, 2 or 3")
        if self.mask_bits_per_cell != 1:
            raise ConfigError("the bitmask must be stored in SLC (1 bit/cell)")
        if self.capacity_mb <= 0:
            raise ConfigError("capacity_mb must be positive")


@dataclass(frozen=True)
class HwConfig:
    """The EdgeBERT accelerator system (paper Fig. 6, Sec. 7).

    ``mac_vector_size`` is the paper's *n*: the PU holds n vector-MACs of
    vector width n (n² FP8 MACs total) and computes an n×n×n matmul tile in
    n cycles.
    """

    mac_vector_size: int = 16
    weight_buffer_kb: int = 128  # per decoder block (×2)
    mask_buffer_kb: int = 16  # per decoder block (×2)
    aux_buffer_kb: int = 32  # SFU auxiliary buffer
    input_bits: int = 8  # FP8 PU operands
    accum_bits: int = 32  # fixed-point accumulation
    sfu_bits: int = 16  # SFU fixed-point datapaths
    dvfs: DvfsConfig = field(default_factory=DvfsConfig)
    envm: EnvmConfig = field(default_factory=EnvmConfig)

    def __post_init__(self):
        if self.mac_vector_size < 1:
            raise ConfigError("mac_vector_size must be >= 1")
        if self.mac_vector_size & (self.mac_vector_size - 1):
            raise ConfigError("mac_vector_size must be a power of two")

    @property
    def macs_per_cycle(self):
        """Peak MAC throughput (n²) of the PU datapath."""
        return self.mac_vector_size**2

    @classmethod
    def energy_optimal(cls):
        """The paper's energy-optimal design point (n = 16)."""
        return cls(mac_vector_size=16)
