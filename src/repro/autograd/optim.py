"""Optimizers for the numpy autograd engine: SGD (momentum) and AdamW.

AdamW (decoupled weight decay) is what the EdgeBERT fine-tuning recipe uses;
SGD is kept for the EE-predictor MLP and tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def clip_grad_global_norm(params, max_norm):
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip global norm (useful for logging).
    """
    if max_norm <= 0:
        raise ConfigError("max_norm must be positive")
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm


class Optimizer:
    """Base class: holds parameters, applies per-step updates."""

    def __init__(self, params):
        self.params = [p for p in params if p.requires_grad]
        if not self.params:
            raise ConfigError("optimizer received no trainable parameters")

    def zero_grad(self):
        for p in self.params:
            p.zero_grad()

    def step(self):
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, params, lr=0.01, momentum=0.0, weight_decay=0.0):
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self):
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            v *= self.momentum
            v += grad
            p.data -= self.lr * v


class AdamW(Optimizer):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def __init__(self, params, lr=1e-3, betas=(0.9, 0.999), eps=1e-8,
                 weight_decay=0.0):
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self):
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * p.data
            p.data -= self.lr * update
