"""Neural-network functional ops built on the autograd :class:`Tensor`.

These are the building blocks of the from-scratch ALBERT implementation:
stable softmax / log-softmax, layer normalization, GELU, dropout, linear
layers, and the two losses the EdgeBERT training recipe needs
(cross-entropy and temperature-scaled distillation KL).
"""

from __future__ import annotations

import numpy as np
from scipy.special import erf as _erf

from repro.autograd.tensor import Tensor, ensure_tensor

_SQRT_2 = float(np.sqrt(2.0))
_INV_SQRT_2PI = float(1.0 / np.sqrt(2.0 * np.pi))


def parameter(data, name=None):
    """Create a trainable tensor."""
    return Tensor(np.asarray(data), requires_grad=True, name=name)


def softmax(x, axis=-1):
    """Numerically stable softmax along ``axis``."""
    x = ensure_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad):
        if x.requires_grad:
            inner = (grad * out_data).sum(axis=axis, keepdims=True)
            x._accumulate(out_data * (grad - inner))

    return Tensor._from_op(out_data, (x,), backward)


def log_softmax(x, axis=-1):
    """Numerically stable log-softmax along ``axis``."""
    x = ensure_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z

    def backward(grad):
        if x.requires_grad:
            softmax_data = np.exp(out_data)
            x._accumulate(grad - softmax_data * grad.sum(axis=axis, keepdims=True))

    return Tensor._from_op(out_data, (x,), backward)


def relu(x):
    """Rectified linear unit."""
    x = ensure_tensor(x)
    out_data = np.maximum(x.data, 0.0)

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad * (x.data > 0.0))

    return Tensor._from_op(out_data, (x,), backward)


def sigmoid(x):
    """Logistic sigmoid with a stable implementation."""
    x = ensure_tensor(x)
    out_data = np.empty_like(x.data)
    positive = x.data >= 0
    out_data[positive] = 1.0 / (1.0 + np.exp(-x.data[positive]))
    exp_x = np.exp(x.data[~positive])
    out_data[~positive] = exp_x / (1.0 + exp_x)

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad * out_data * (1.0 - out_data))

    return Tensor._from_op(out_data, (x,), backward)


def gelu(x):
    """Exact (erf-based) GELU, the activation used by BERT/ALBERT FFNs."""
    x = ensure_tensor(x)
    cdf = 0.5 * (1.0 + _erf(x.data / _SQRT_2))
    out_data = x.data * cdf

    def backward(grad):
        if x.requires_grad:
            pdf = _INV_SQRT_2PI * np.exp(-0.5 * x.data**2)
            x._accumulate(grad * (cdf + x.data * pdf))

    return Tensor._from_op(out_data, (x,), backward)


def layer_norm(x, gain, bias, eps=1e-5):
    """Layer normalization over the last axis.

    The paper leans on layer norm's reparameterization invariance to argue
    for floating-point quantization (Sec. 3.4); this implementation follows
    the standard Ba et al. formulation.
    """
    x = ensure_tensor(x)
    gain = ensure_tensor(gain)
    bias = ensure_tensor(bias)
    mean = x.data.mean(axis=-1, keepdims=True)
    centered = x.data - mean
    variance = (centered**2).mean(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(variance + eps)
    normalized = centered * inv_std
    out_data = gain.data * normalized + bias.data

    def backward(grad):
        if gain.requires_grad:
            gain._accumulate(grad * normalized)
        if bias.requires_grad:
            bias._accumulate(grad)
        if x.requires_grad:
            width = x.data.shape[-1]
            d_norm = grad * gain.data
            term1 = width * d_norm
            term2 = d_norm.sum(axis=-1, keepdims=True)
            term3 = normalized * (d_norm * normalized).sum(axis=-1, keepdims=True)
            x._accumulate((inv_std / width) * (term1 - term2 - term3))

    return Tensor._from_op(out_data, (x, gain, bias), backward)


def dropout(x, rate, rng, training=True):
    """Inverted dropout; identity when ``training`` is false or rate is 0."""
    x = ensure_tensor(x)
    if not training or rate <= 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.data.shape) < keep) / keep
    out_data = x.data * mask

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._from_op(out_data, (x,), backward)


def linear(x, weight, bias=None):
    """Affine map ``x @ weight + bias`` (weight shaped (in, out))."""
    out = ensure_tensor(x) @ ensure_tensor(weight)
    if bias is not None:
        out = out + ensure_tensor(bias)
    return out


def cross_entropy(logits, labels):
    """Mean cross-entropy of integer ``labels`` under ``logits``.

    ``logits`` is (batch, classes); ``labels`` an int array (batch,).
    """
    labels = np.asarray(labels)
    log_probs = log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(labels.shape[0]), labels]
    return -(picked.mean())


def distillation_kl(student_logits, teacher_logits, temperature=1.0):
    """Hinton-style distillation loss: T² · KL(teacher ‖ student).

    The teacher distribution is treated as a constant (detached).
    """
    temperature = float(temperature)
    teacher = ensure_tensor(teacher_logits).detach()
    teacher_probs = softmax(teacher * (1.0 / temperature), axis=-1).data
    student_log_probs = log_softmax(
        ensure_tensor(student_logits) * (1.0 / temperature), axis=-1
    )
    teacher_log_probs = np.log(np.clip(teacher_probs, 1e-12, None))
    kl_per_row = (
        Tensor(teacher_probs * teacher_log_probs).sum(axis=-1)
        - (student_log_probs * teacher_probs).sum(axis=-1)
    )
    return kl_per_row.mean() * (temperature**2)


def entropy_of_logits(logits):
    """Differentiable Shannon entropy (nats) of softmax(logits) rows."""
    log_probs = log_softmax(logits, axis=-1)
    probs = softmax(logits, axis=-1)
    return -(probs * log_probs).sum(axis=-1)
