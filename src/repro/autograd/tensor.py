"""A small tape-based reverse-mode autodiff engine over numpy arrays.

This is the training substrate for the from-scratch ALBERT implementation.
It follows the classic design: every operation records a backward closure
and its parent tensors; :meth:`Tensor.backward` topologically sorts the tape
and accumulates gradients into ``.grad`` (plain ndarrays).

Only the operations the EdgeBERT models actually need are implemented, but
each supports full numpy broadcasting with correct gradient reduction.
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro.errors import GradientError, ShapeError

_GRAD_ENABLED = [True]
_DEFAULT_DTYPE = [np.float64]


def grad_enabled():
    """Whether operations currently record the autodiff tape."""
    return _GRAD_ENABLED[-1]


@contextlib.contextmanager
def no_grad():
    """Context manager disabling tape recording (for evaluation paths)."""
    _GRAD_ENABLED.append(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.pop()


def get_default_dtype():
    """Dtype new tensors are created with (float64 by default)."""
    return _DEFAULT_DTYPE[-1]


def set_default_dtype(dtype):
    """Set the global default tensor dtype (float32 or float64).

    float64 keeps gradient checks exact; float32 roughly doubles training
    throughput and is what the artifact pipeline uses.
    """
    dtype = np.dtype(dtype)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise TypeError(f"unsupported default dtype {dtype}")
    _DEFAULT_DTYPE[-1] = dtype.type


@contextlib.contextmanager
def default_dtype(dtype):
    """Context manager scoping :func:`set_default_dtype`."""
    _DEFAULT_DTYPE.append(_DEFAULT_DTYPE[-1])
    try:
        set_default_dtype(dtype)
        yield
    finally:
        _DEFAULT_DTYPE.pop()


def _unbroadcast(grad, shape):
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting.

    Sums over axes that were added or broadcast from size 1.
    """
    if grad.shape == shape:
        return grad
    # Sum over prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes broadcast from 1.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value):
    if isinstance(value, Tensor):
        raise TypeError("expected raw array, got Tensor")
    return np.asarray(value, dtype=get_default_dtype())


def ensure_tensor(value):
    """Coerce ``value`` to a (non-differentiable) :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


class Tensor:
    """An ndarray with an optional gradient tape.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts; stored as float64.
    requires_grad:
        Whether gradients should be accumulated into ``.grad``.
    name:
        Optional label (used for parameters and debugging).
    """

    __slots__ = ("data", "grad", "requires_grad", "name", "_backward", "_parents")

    def __init__(self, data, requires_grad=False, name=None, dtype=None):
        if dtype is None:
            dtype = get_default_dtype()
        self.data = np.asarray(data, dtype=dtype)
        self.grad = None
        self.requires_grad = bool(requires_grad)
        self.name = name
        self._backward = None
        self._parents = ()

    # -- construction helpers ------------------------------------------------

    @classmethod
    def zeros(cls, shape, requires_grad=False, name=None):
        return cls(np.zeros(shape), requires_grad=requires_grad, name=name)

    @classmethod
    def _from_op(cls, data, parents, backward):
        """Build an op result, recording the tape when grad is enabled."""
        requires = grad_enabled() and any(p.requires_grad for p in parents)
        out = cls(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    # -- basic protocol --------------------------------------------------------

    @property
    def shape(self):
        return self.data.shape

    @property
    def ndim(self):
        return self.data.ndim

    @property
    def size(self):
        return self.data.size

    def __len__(self):
        return len(self.data)

    def __repr__(self):
        grad_tag = ", requires_grad=True" if self.requires_grad else ""
        name_tag = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.data.shape}{grad_tag}{name_tag})"

    def numpy(self):
        """Return the underlying ndarray (no copy)."""
        return self.data

    def item(self):
        return float(self.data)

    def detach(self):
        """Return a new tensor sharing data but cut from the tape."""
        return Tensor(self.data)

    # -- gradient accumulation -------------------------------------------------

    def _accumulate(self, grad):
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype),
                            self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def zero_grad(self):
        self.grad = None

    def backward(self, grad=None):
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (must be supplied for non-scalar outputs
        only if a different seed gradient is wanted).
        """
        if not self.requires_grad:
            raise GradientError("backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ShapeError(
                    f"seed gradient shape {grad.shape} != tensor shape {self.data.shape}"
                )

        order = []
        seen = set()

        def visit(node):
            stack = [(node, False)]
            while stack:
                current, expanded = stack.pop()
                if expanded:
                    order.append(current)
                    continue
                if id(current) in seen:
                    continue
                seen.add(id(current))
                stack.append((current, True))
                for parent in current._parents:
                    if id(parent) not in seen:
                        stack.append((parent, False))

        visit(self)
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other):
        other = ensure_tensor(other)
        out_data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return Tensor._from_op(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._from_op(-self.data, (self,), backward)

    def __sub__(self, other):
        return self + (-ensure_tensor(other))

    def __rsub__(self, other):
        return ensure_tensor(other) + (-self)

    def __mul__(self, other):
        other = ensure_tensor(other)
        out_data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return Tensor._from_op(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = ensure_tensor(other)
        out_data = self.data / other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data**2))

        return Tensor._from_op(out_data, (self, other), backward)

    def __rtruediv__(self, other):
        return ensure_tensor(other) / self

    def __pow__(self, exponent):
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        exponent = float(exponent)
        out_data = self.data**exponent

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._from_op(out_data, (self,), backward)

    def __matmul__(self, other):
        other = ensure_tensor(other)
        out_data = self.data @ other.data

        def backward(grad):
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data)
                                     if self.data.ndim > 1 else grad * other.data)
                else:
                    self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad))
                else:
                    other._accumulate(np.swapaxes(self.data, -1, -2) @ grad)

        return Tensor._from_op(out_data, (self, other), backward)

    # -- elementwise functions ----------------------------------------------

    def exp(self):
        out_data = np.exp(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._from_op(out_data, (self,), backward)

    def log(self):
        out_data = np.log(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._from_op(out_data, (self,), backward)

    def sqrt(self):
        out_data = np.sqrt(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * 0.5 / out_data)

        return Tensor._from_op(out_data, (self,), backward)

    def tanh(self):
        out_data = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._from_op(out_data, (self,), backward)

    def abs(self):
        out_data = np.abs(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return Tensor._from_op(out_data, (self,), backward)

    def clip_min(self, minimum):
        """Elementwise max(self, minimum); subgradient 1 where kept."""
        minimum = float(minimum)
        out_data = np.maximum(self.data, minimum)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (self.data > minimum))

        return Tensor._from_op(out_data, (self,), backward)

    # -- reductions -----------------------------------------------------------

    def sum(self, axis=None, keepdims=False):
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            expanded = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(expanded, self.data.shape))

        return Tensor._from_op(out_data, (self,), backward)

    def mean(self, axis=None, keepdims=False):
        count = self.data.size if axis is None else _axis_size(self.data.shape, axis)
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims=False):
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            expanded_out = out_data
            expanded_grad = grad
            if axis is not None and not keepdims:
                expanded_out = np.expand_dims(out_data, axis)
                expanded_grad = np.expand_dims(grad, axis)
            mask = (self.data == expanded_out).astype(self.data.dtype)
            # Split gradient evenly among ties to keep the op well-defined.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None \
                else mask.sum()
            self._accumulate(expanded_grad * mask / counts)

        return Tensor._from_op(out_data, (self,), backward)

    # -- shape manipulation -----------------------------------------------------

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._from_op(out_data, (self,), backward)

    def transpose(self, *axes):
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        inverse = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._from_op(out_data, (self,), backward)

    def swapaxes(self, a, b):
        axes = list(range(self.data.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, index):
        out_data = self.data[index]

        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._from_op(out_data, (self,), backward)

    # -- comparison (non-differentiable, returns ndarray) ---------------------

    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other


def _axis_size(shape, axis):
    if isinstance(axis, int):
        return shape[axis]
    result = 1
    for a in axis:
        result *= shape[a]
    return result


def where(condition, a, b):
    """Differentiable selection; ``condition`` is a plain boolean array."""
    condition = np.asarray(condition)
    a = ensure_tensor(a)
    b = ensure_tensor(b)
    out_data = np.where(condition, a.data, b.data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * condition)
        if b.requires_grad:
            b._accumulate(grad * (~condition if condition.dtype == bool
                                  else 1.0 - condition))

    return Tensor._from_op(out_data, (a, b), backward)


def concat(tensors, axis=0):
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [ensure_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

    return Tensor._from_op(out_data, tuple(tensors), backward)


def stack(tensors, axis=0):
    """Stack tensors along a new ``axis``."""
    tensors = [ensure_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        moved = np.moveaxis(grad, axis, 0)
        for tensor, piece in zip(tensors, moved):
            if tensor.requires_grad:
                tensor._accumulate(piece)

    return Tensor._from_op(out_data, tuple(tensors), backward)


def embedding(weight, ids):
    """Row gather ``weight[ids]`` with scatter-add backward.

    ``ids`` is an integer ndarray; ``weight`` a 2-D tensor (vocab, dim).
    """
    ids = np.asarray(ids)
    if np.issubdtype(ids.dtype, np.floating):
        ids = ids.astype(np.int64)
    out_data = weight.data[ids]

    def backward(grad):
        if weight.requires_grad:
            full = np.zeros_like(weight.data)
            np.add.at(full, ids.reshape(-1), grad.reshape(-1, weight.data.shape[1]))
            weight._accumulate(full)

    return Tensor._from_op(out_data, (weight,), backward)
