"""Numerical gradient checking used by the autograd test-suite."""

from __future__ import annotations

import numpy as np


def numerical_gradient(fn, tensor, eps=1e-6):
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``tensor``.

    ``fn`` must close over ``tensor`` and return a scalar :class:`Tensor`.
    """
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn().data)
        flat[i] = original - eps
        minus = float(fn().data)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(fn, tensors, eps=1e-6, atol=1e-5, rtol=1e-4):
    """Compare analytic and numerical gradients for every tensor.

    Returns the maximum absolute deviation; raises ``AssertionError`` on
    mismatch (so it can sit directly inside tests).
    """
    for t in tensors:
        t.zero_grad()
    out = fn()
    out.backward()
    worst = 0.0
    for t in tensors:
        numeric = numerical_gradient(fn, t, eps=eps)
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        deviation = np.abs(analytic - numeric)
        tolerance = atol + rtol * np.abs(numeric)
        if not np.all(deviation <= tolerance):
            worst_idx = np.unravel_index(np.argmax(deviation - tolerance),
                                         deviation.shape)
            raise AssertionError(
                f"gradient mismatch for {t.name or 'tensor'} at {worst_idx}: "
                f"analytic={analytic[worst_idx]:.8f} "
                f"numeric={numeric[worst_idx]:.8f}"
            )
        worst = max(worst, float(deviation.max()))
    return worst
