"""Multi-task serving with eNVM-resident shared embeddings.

EdgeBERT's memory story: the word-embedding table is identical across NLP
tasks (frozen during fine-tuning), so it lives permanently in on-chip
ReRAM; only the task-specific encoder weights change when the assistant
switches tasks. This example serves all four tasks back-to-back and
prices the embedding traffic both ways — conventional (DRAM reload per
power cycle) vs. EdgeBERT (ReRAM resident).

Run:  python examples/multi_task_serving.py
"""

import numpy as np

from repro.config import GLUE_TASKS
from repro.core import load_all_artifacts
from repro.envm import MLC2, EnvmEmbeddingStore
from repro.hw import power_on_embedding_cost


def main():
    artifacts = load_all_artifacts()

    print("Task switchboard (shared embeddings, task-specific encoders):")
    reference = artifacts["sst2"].model.embeddings.word.weight.data
    for task in GLUE_TASKS:
        artifact = artifacts[task]
        table = artifact.model.embeddings.word.weight.data
        shared = np.array_equal(table != 0, reference != 0)
        print(f"  {task:5s}: acc={artifact.baseline_accuracy:.3f} "
              f"enc_sparsity={artifact.encoder_sparsity:.2f} "
              f"emb_density={artifact.embedding_density:.2f} "
              f"embedding-mask-shared={shared}")

    # The stored eNVM image: bitmask in SLC, non-zero FP8 values in MLC2.
    store = EnvmEmbeddingStore(reference, MLC2)
    print(f"\neNVM image: {store.footprint_bytes() / 1024:.1f} KB "
          f"({store.area_mm2():.4f} mm2), "
          f"read {store.read_energy_pj() / 1e3:.1f} nJ")

    comparison = power_on_embedding_cost(
        image_bytes=max(int(store.footprint_bytes()), 1024),
        sentence_rows=artifacts["sst2"].model_config.max_seq_len,
        row_bytes=artifacts["sst2"].model_config.embedding_size,
        embedding_density=artifacts["sst2"].embedding_density)
    print("\nPower-on embedding cost (per wake-up):")
    print(f"  conventional DRAM->SRAM: "
          f"{comparison.conventional_energy_pj / 1e6:.3f} uJ, "
          f"{comparison.conventional_latency_ns / 1e3:.2f} us")
    print(f"  EdgeBERT ReRAM-resident: "
          f"{comparison.edgebert_energy_pj / 1e6:.6f} uJ, "
          f"{comparison.edgebert_latency_ns / 1e3:.2f} us")
    print(f"  advantage: {comparison.energy_advantage:,.0f}x energy, "
          f"{comparison.latency_advantage:.0f}x latency")
    print("\nIntermittent operation: these savings recur on every power "
          "cycle — the embeddings never have to be re-fetched.")


if __name__ == "__main__":
    main()
