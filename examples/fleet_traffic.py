"""Multi-site fleet demo: route mixed traffic across three edge sites.

Builds the reference fleet — a close-by site with the big tight-SLO
device, the energy-optimal mid site, and a far power-capped small
site — and plays the same mixed-SLO, mixed-criticality trace through
all three routing policies, with the device autoscaler on. Prints the
policy comparison (joules, SLO misses, cross-site spread, capped-site
budget activity, parks/wakes) and then drills into the energy policy's
per-site breakdown.

The energy-policy run is traced end-to-end: the script writes a
Perfetto-loadable Chrome trace (``fleet_trace.json`` — drop it on
https://ui.perfetto.dev) plus the lossless JSONL span log
(``fleet_spans.jsonl``, replayable with
``python -m repro.telemetry fleet_spans.jsonl``), audits the traced
span energy against the fleet ledgers at 1e-9, and prints the
per-site metric summary off the shared registry. A
:class:`~repro.telemetry.TelemetryMonitor` with the default SRE rule
set rides along on the same run and writes whatever fired to
``fleet_alerts.jsonl`` (replayable with
``python -m repro.telemetry.monitor --replay fleet_spans.jsonl``).

The same traced run is then stitched into per-request causal journeys
(:mod:`repro.telemetry.analysis`): ``fleet_journeys.jsonl`` holds one
journey per line, ``fleet_flame.txt`` the collapsed-stack flamegraph
(open with speedscope or ``flamegraph.pl``), and the script prints the
hot-path table plus the slowest request's latency waterfall.

Run:  PYTHONPATH=src python examples/fleet_traffic.py [--out DIR]
(no trained artifacts needed — synthetic profiles; artifacts land in
``--out``, default ``./out``)
"""

import argparse
import os

from repro.cluster import generate_diurnal_trace
from repro.fleet import FleetAutoscaler, FleetOrchestrator
from repro.fleet.__main__ import reference_fleet, reference_workload
from repro.telemetry import (MetricsRegistry, TelemetryMonitor, Tracer,
                             default_rules, reconcile_fleet,
                             render_metrics, render_timeline,
                             write_chrome_trace, write_spans_jsonl)
from repro.telemetry.analysis import (analyze, render_hot_paths,
                                      render_waterfall,
                                      write_flamegraph)
from repro.utils import format_table


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="multi-site fleet routing demo")
    parser.add_argument(
        "--out", default="./out", metavar="DIR",
        help="directory for trace/span/alert artifacts (default ./out)")
    parser.add_argument(
        "--requests", type=int, default=None, metavar="N",
        help="scale up with a seeded diurnal (day-curve) trace of N "
             "requests — volumes past a few thousand exercise the "
             "orchestrator's bulk routing front end (default: the "
             "400-request reference workload)")
    args = parser.parse_args(argv)
    os.makedirs(args.out, exist_ok=True)

    registry, trace = reference_workload(num_requests=400)
    if args.requests is not None:
        # Same registry and request mix as the reference workload, but
        # arrivals follow the diurnal day curve at constant mean rate —
        # the trace the replay benchmarks scale on.
        trace = generate_diurnal_trace(
            args.requests, seed=0, mean_interarrival_ms=1.0,
            modes=("base", "lai"))
    configs = reference_fleet()
    print(format_table(
        ["Site", "Devices (n)", "RTT (ms)", "Power cap"],
        [[c.site_id,
          "/".join(str(hw.mac_vector_size) for hw in c.hw_configs),
          f"{c.rtt_ms:g}",
          "-" if c.energy_budget_mw is None
          else f"{c.energy_budget_mw:g} mW"]
         for c in configs],
        title="Reference fleet"))
    print()

    reports = {}
    rows = []
    tracer = Tracer()
    metrics = MetricsRegistry()
    monitor = TelemetryMonitor(default_rules(), registry=metrics)
    for policy in ("round-robin", "least-loaded", "energy"):
        # Only the headline (energy) run is traced/monitored; both are
        # read-only, so its report matches an untraced run bit-for-bit.
        traced = policy == "energy"
        fleet = FleetOrchestrator(
            registry, configs, routing=policy,
            autoscaler=FleetAutoscaler(),
            tracer=tracer if traced else None,
            metrics=metrics if traced else None,
            monitor=monitor if traced else None)
        report = fleet.run(trace)
        report.reconcile(tol=1e-9)
        reports[policy] = report
        per_site = report.per_site()
        stats = report.autoscaler
        rows.append([
            policy,
            f"{report.total_energy_mj:.3f}",
            str(report.deadline_violations),
            str(report.deferrals),
            "/".join(str(per_site[sid]["requests"])
                     for sid in sorted(per_site)),
            str(sum(stats.parks.values())),
            str(sum(stats.wakes.values())),
            f"{report.p95_time_in_system_ms:.2f}",
        ])
    print(format_table(
        ["Routing", "Energy (mJ)", "SLO miss", "Defers", "Req a/b/c",
         "Parks", "Wakes", "p95 (ms)"],
        rows, title=f"Routing policies — {len(trace)} requests"))
    print()

    energy = reports["energy"]
    site_rows = []
    for site_id, row in sorted(energy.per_site().items()):
        breakdown = energy.energy_breakdown()[site_id]
        budget = row["budget"]
        site_rows.append([
            site_id, str(row["requests"]), str(row["violations"]),
            f"{breakdown['compute_mj']:.3f}",
            f"{breakdown['idle_mj']:.3f}",
            f"{breakdown['total_mj']:.3f}",
            "-" if budget is None else str(budget["throttle_events"]),
            f"{row['parks']}/{row['wakes']}",
        ])
    print(format_table(
        ["Site", "Requests", "SLO miss", "Compute (mJ)", "Idle (mJ)",
         "Total (mJ)", "Throttles", "Parks/Wakes"],
        site_rows, title="Energy/deadline-aware routing — per site"))
    print()

    # The traced run's span-energy rollup must tie out against every
    # ledger level (per-site categories + fleet total) at 1e-9 — the
    # trace is an audit, not an approximation.
    reconcile_fleet(tracer, energy, tol=1e-9)
    print(f"span-energy audit: {tracer.emitted} spans reconcile "
          "against the fleet ledgers at 1e-9")
    print()
    print(render_timeline(tracer.iter_spans(), width=64))
    print()
    print(render_metrics(metrics))
    print()

    incident_report = monitor.report()
    worst = incident_report.worst_severity()
    print(f"monitor: {incident_report.num_alerts} alerts / "
          f"{incident_report.num_incidents} incidents"
          + (f" (worst: {worst})" if worst else " — all quiet"))
    for scope in sorted(incident_report.health):
        print(f"  health[{scope}] = {incident_report.health[scope]:.2f}")
    print()

    # Stitch the traced run into per-request journeys: every leg chain
    # tiles time-in-system exactly and the attributed joules reconcile
    # against the same ledgers the span audit above checked.
    analysis = analyze(tracer)
    analysis.reconcile(energy, tol=1e-9)
    for journey in analysis.journeys:
        journey.critical_path(tol=1e-9)
    print(render_hot_paths(analysis, limit=8))
    print()
    slowest = max(analysis.journeys, key=lambda j: j.time_in_system_ms)
    print(render_waterfall(slowest))
    print()

    trace_path = os.path.join(args.out, "fleet_trace.json")
    spans_path = os.path.join(args.out, "fleet_spans.jsonl")
    alerts_path = os.path.join(args.out, "fleet_alerts.jsonl")
    journeys_path = os.path.join(args.out, "fleet_journeys.jsonl")
    flame_path = os.path.join(args.out, "fleet_flame.txt")
    n_events = write_chrome_trace(tracer, trace_path)
    n_spans = write_spans_jsonl(tracer, spans_path)
    n_rows = incident_report.to_jsonl(alerts_path)
    n_journeys = analysis.to_jsonl(journeys_path)
    n_stacks = write_flamegraph(analysis, flame_path)
    print(f"wrote {trace_path} ({n_events} events — load in "
          "https://ui.perfetto.dev)")
    print(f"wrote {spans_path} ({n_spans} spans — replay with "
          f"python -m repro.telemetry {spans_path})")
    print(f"wrote {alerts_path} ({n_rows} rows — alerts, incidents, "
          "health)")
    print(f"wrote {journeys_path} ({n_journeys} journeys — stitched "
          f"with python -m repro.telemetry.analysis {spans_path})")
    print(f"wrote {flame_path} ({n_stacks} collapsed stacks — open in "
          "https://speedscope.app)")


if __name__ == "__main__":
    main()
