"""Design-space exploration of the EdgeBERT accelerator.

Sweeps the PU MAC vector size and reports latency/energy/area/power per
design point (the Fig. 8 / Fig. 10 studies), then prints the eNVM cell
trade-off (Table 2's density/latency rows) — everything a hardware
architect would look at before committing to the n = 16 point.

Run:  python examples/accelerator_explorer.py
"""

from repro.baselines import MobileGpuModel
from repro.config import HwConfig, ModelConfig
from repro.envm import MLC2, MLC3, SLC
from repro.hw import (
    AcceleratorModel,
    TaskSetting,
    build_encoder_workload,
    sweep_design_space,
)

MNLI_SPANS = (20, 0, 0, 0, 0, 0, 36, 81, 0, 0, 0, 10)


def main():
    config = ModelConfig.albert_base()
    setting = TaskSetting("mnli", MNLI_SPANS, encoder_density=0.5)
    points, mgpu = sweep_design_space(config, setting, num_layers=12,
                                      seq_len=128)

    print("MAC-vector-size sweep (12-layer sentence, MNLI settings):")
    print(f"{'n':>4} {'area mm2':>9} {'lat ms':>8} {'E base':>8} "
          f"{'E +AAS':>8} {'E +sparse':>10}")
    for n in (2, 4, 8, 16, 32):
        accel = AcceleratorModel(HwConfig(mac_vector_size=n))
        by_mode = {p.mode: p for p in points if p.vector_size == n}
        print(f"{n:>4} {accel.total_area_mm2():>9.2f} "
              f"{by_mode['base'].latency_ms:>8.1f} "
              f"{by_mode['base'].energy_mj:>8.2f} "
              f"{by_mode['aas'].energy_mj:>8.2f} "
              f"{by_mode['aas_sparse'].energy_mj:>10.2f}")
    print(f"mGPU (TX2): {mgpu['base'].latency_ms:.1f} ms / "
          f"{mgpu['base'].energy_mj:.1f} mJ "
          f"(+AAS: {mgpu['aas'].latency_ms:.1f} ms / "
          f"{mgpu['aas'].energy_mj:.1f} mJ)")

    best = min((p for p in points if p.mode == "aas_sparse"),
               key=lambda p: p.energy_mj)
    print(f"\nenergy-optimal design: n = {best.vector_size} "
          f"({best.energy_mj:.2f} mJ/sentence; "
          f"{mgpu['aas'].energy_mj / best.energy_mj:.0f}x below the mGPU)")

    accel = AcceleratorModel(HwConfig(mac_vector_size=16))
    workload = build_encoder_workload(config, 128, use_adaptive_span=False)
    print("\nn=16 block power at 0.8 V / 1 GHz (paper: 85.9 mW total):")
    for block, mw in accel.power_breakdown_mw(workload).items():
        print(f"  {block:15s} {mw:6.2f} mW")

    print("\neNVM cell trade-off for the 2 MB embedding buffer:")
    print(f"{'cell':>6} {'mm2/MB':>7} {'read ns':>8} {'err rate':>10}")
    for cell in (SLC, MLC2, MLC3):
        print(f"{cell.name:>6} {cell.area_mm2_per_mb:>7.2f} "
              f"{cell.read_latency_ns:>8.2f} {cell.level_error_rate:>10.0e}")
    print("-> MLC2 for data (dense AND reliable), SLC for the bitmask.")


if __name__ == "__main__":
    main()
