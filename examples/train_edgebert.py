"""Train an EdgeBERT model from scratch on a synthetic GLUE task.

Walks through the full Fig. 4 recipe at demonstration scale (~1 minute):
teacher fine-tuning, phase-1 student training with knowledge distillation
and movement pruning, sensitivity-based span calibration, backbone
adaptation, and phase-2 off-ramp fine-tuning — printing the compression
measurements after each stage.

Run:  python examples/train_edgebert.py [task]
"""

import sys
from dataclasses import replace

import numpy as np

from repro.autograd import default_dtype
from repro.config import ModelConfig, PruningConfig, TrainConfig
from repro.data import build_vocab, make_task_data
from repro.model import AlbertModel
from repro.pruning import measured_embedding_density, measured_encoder_sparsity
from repro.training import EdgeBertTrainer, evaluate_accuracy, train_teacher
from repro.training.span_calibration import calibrate_spans


def main(task="sst2"):
    with default_dtype("float32"):  # 2x faster training
        vocab = build_vocab()
        num_labels = 3 if task == "mnli" else 2
        train, eval_split = make_task_data(task, train_size=512,
                                           eval_size=192, seed=0,
                                           max_seq_len=40)
        config = ModelConfig(vocab_size=len(vocab), max_seq_len=40,
                             num_layers=6, num_labels=num_labels)

        print(f"[1/5] teacher fine-tuning ({task})")
        teacher = AlbertModel(replace(config, use_adaptive_span=False),
                              seed=1)
        train_teacher(teacher, train, steps=400, batch_size=8, lr=5e-4)
        print(f"      accuracy {evaluate_accuracy(teacher, eval_split):.3f}")

        print("[2/5] phase 1: KD + movement pruning "
              "(frozen, magnitude-pruned embeddings)")
        student = AlbertModel(config, seed=0)
        student.shared_encoder.attention.span.z.data[:] = 40 + 16.0
        trainer = EdgeBertTrainer(
            student,
            TrainConfig(steps_phase1=450, steps_phase2=200, batch_size=8,
                        learning_rate=5e-4, span_loss_coeff=0.0,
                        pruning=PruningConfig(embedding_sparsity=0.6,
                                              encoder_sparsity=0.5)),
            teacher=teacher)
        trainer.train_phase1(train)
        print(f"      accuracy {evaluate_accuracy(student, eval_split):.3f}, "
              f"encoder sparsity {measured_encoder_sparsity(student):.2f}, "
              f"embedding density {measured_embedding_density(student):.2f}")

        print("[3/5] adaptive-span calibration (head sensitivity)")
        result = calibrate_spans(student, train.subset(np.arange(96)),
                                 loss_budget=0.06)
        print(f"      spans {result.spans.round(0)} "
              f"({result.heads_off}/12 heads off)")

        print("[4/5] backbone adaptation with final masks")
        student.shared_encoder.attention.span.z.requires_grad = False
        trainer.train_adaptation(train, steps=120)
        print(f"      accuracy {evaluate_accuracy(student, eval_split):.3f}")

        print("[5/5] phase 2: highway off-ramp fine-tuning")
        trainer.train_phase2(train)
        for layer in (1, 2, 4, 6):
            acc = evaluate_accuracy(student, eval_split, layer=layer)
            print(f"      off-ramp L{layer}: {acc:.3f}")
        print("done — the model is ready for entropy-based early exit.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "sst2")
