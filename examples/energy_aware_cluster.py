"""Compare cluster policies on joules, not just latency.

The same mixed-SLO, mixed-criticality trace (four GLUE tasks, base+lai
modes, ~1 request/ms) is played through the discrete-event simulator on
a heterogeneous 4-device pool — one big n=32 accelerator, two
energy-optimal n=16 devices, one small n=8 — under FIFO, affinity
routing, EDF and the energy governor. The table shows what the governor
trades: it pays a few more encoder swaps than affinity but routes each
batch to the device where it costs the fewest joules (and that is fast
enough for its deadline), which is what wins the total.

The second half throttles the governor under a rolling joules/sec
budget (Camel-style admission control) to show energy capping as a
first-class knob: same trace, half the power, every request still
served — later.

Run:  python examples/energy_aware_cluster.py
"""

from repro.cluster import ClusterSimulator
from repro.config import GLUE_TASKS, HwConfig
from repro.serving import synthetic_registry, synthetic_traffic

NUM_REQUESTS = 600
SENTENCES_PER_TASK = 128
MEAN_INTERARRIVAL_MS = 1.0
POOL_MACS = (32, 16, 16, 8)


def main():
    registry = synthetic_registry(GLUE_TASKS, n=SENTENCES_PER_TASK,
                                  seed=0)
    trace = synthetic_traffic(registry, NUM_REQUESTS, seed=1,
                              mean_interarrival_ms=MEAN_INTERARRIVAL_MS,
                              modes=("base", "lai"))
    pool = tuple(HwConfig(mac_vector_size=n) for n in POOL_MACS)
    print(f"Trace: {len(trace)} requests over {trace[-1].arrival_ms:,.0f}"
          f" ms ({len(GLUE_TASKS)} tasks, 3 SLO classes, base+lai)")
    print(f"Pool:  {len(pool)} accelerators, mac vector sizes "
          f"{'/'.join(str(n) for n in POOL_MACS)}")

    print(f"\n{'policy':>10s} {'total mJ':>9s} {'compute':>8s} "
          f"{'swap':>6s} {'idle':>6s} {'trans':>6s} {'SLO miss':>8s} "
          f"{'swaps':>5s} {'preempt':>7s}")
    reports = {}
    for policy in ("fifo", "affinity", "edf", "energy"):
        report = ClusterSimulator(registry, policy=policy,
                                  hw_configs=pool).run(trace)
        reports[policy] = report
        e = report.energy
        print(f"{policy:>10s} {e.total_mj:9.3f} {e.compute_mj:8.3f} "
              f"{e.swap_mj:6.3f} {e.idle_mj:6.3f} "
              f"{e.transition_mj:6.4f} {report.deadline_violations:8d} "
              f"{report.serving.task_switches:5d} "
              f"{report.preemptions:7d}")

    governor = reports["energy"]
    saved = reports["fifo"].energy.total_mj - governor.energy.total_mj
    print(f"\nGovernor saves {saved:.3f} mJ "
          f"({saved / reports['fifo'].energy.total_mj:.1%}) vs FIFO at "
          f"{governor.deadline_violations} SLO misses.")

    # Where the governor put the traffic (big devices for tight SLOs,
    # cheap devices for the rest).
    print(f"\n{'device':>7s} {'mac n':>5s} {'batches':>7s} "
          f"{'requests':>8s} {'busy ms':>8s} {'compute mJ':>10s} "
          f"{'idle mJ':>8s} {'parked V':>8s}")
    for stats, device in zip(governor.accelerators,
                             governor.energy.devices):
        print(f"{device.accel_id:>7d} {device.mac_vector_size:5d} "
              f"{stats.batches:7d} {stats.requests:8d} "
              f"{stats.busy_ms:8.1f} {device.compute_mj:10.3f} "
              f"{device.idle_mj:8.3f} {device.parked_vdd:8.3f}")

    # Energy per request by (task, SLO class, mode).
    print("\nEnergy per request by class (governor):")
    for key, stats in sorted(governor.energy.per_class.items()):
        print(f"  {key:>22s}: {stats['mj_per_request'] * 1e3:7.3f} µJ "
              f"over {stats['requests']} requests")

    # Camel-style budget throttling: cap the cluster at half its
    # unconstrained average power and replay.
    avg_mw = governor.energy.total_mj / governor.makespan_ms * 1e3
    budgeted = ClusterSimulator(
        registry, policy="energy", hw_configs=pool,
        energy_budget_mw=avg_mw * 0.5, budget_window_ms=50.0).run(trace)
    b = budgeted.budget
    print(f"\nBudget: cap {avg_mw * 0.5:.2f} mW (50 ms window) vs "
          f"unconstrained {avg_mw:.2f} mW average power")
    print(f"  throttled {b.throttle_events} times "
          f"({b.throttled_ms:,.0f} ms of stalls, {b.overshoots} "
          f"overshoots), makespan {governor.makespan_ms:,.0f} -> "
          f"{budgeted.makespan_ms:,.0f} ms, "
          f"all {budgeted.num_requests} requests served, SLO misses "
          f"{governor.deadline_violations} -> "
          f"{budgeted.deadline_violations}")


if __name__ == "__main__":
    main()
