"""Energy vs. latency-target sweep (the Fig. 9 trade-off, interactive).

Sweeps the per-sentence latency target from tight to relaxed and shows
how the DVFS controller trades slack for energy: at tight targets it must
hold nominal V/F; as the target relaxes the voltage steps down the LDO
ladder until scaling bottoms out at 0.5 V.

Run:  python examples/latency_sweep.py
"""

import numpy as np

from repro.config import HwConfig, ModelConfig
from repro.core import LatencyAwareEngine, load_task_artifact
from repro.earlyexit import build_lut_for_threshold, calibrate_conventional


def bar(value, top, width=42):
    filled = int(round(width * value / top))
    return "#" * filled + "." * (width - filled)


def main():
    artifact = load_task_artifact("mnli")
    calibration = calibrate_conventional(
        artifact.eval_logits, artifact.eval_entropies, artifact.eval_labels,
        max_drop_pct=1.0)
    lut = build_lut_for_threshold(artifact.train_entropies,
                                  calibration.threshold,
                                  artifact.eval_logits.shape[-1])
    engine = LatencyAwareEngine(ModelConfig.albert_base(num_labels=3),
                                HwConfig.energy_optimal())

    base = engine.simulate_dataset("base", artifact.eval_logits,
                                   artifact.eval_entropies)
    print(f"Conventional 12-layer inference: "
          f"{base.average_energy_mj:.3f} mJ/sentence, "
          f"{base.average_latency_ms:.1f} ms\n")
    print(f"{'target':>8} {'VDD':>6} {'freq':>6} {'energy':>8} "
          f"{'saving':>7}  energy bar")
    top = base.average_energy_mj
    for target in (48, 50, 55, 60, 70, 80, 100, 125, 150):
        report = engine.simulate_dataset(
            "lai", artifact.eval_logits, artifact.eval_entropies, lut=lut,
            entropy_threshold=calibration.threshold, target_ms=float(target))
        saving = top / report.average_energy_mj
        print(f"{target:>6}ms {report.average_vdd:>6.3f} "
              f"{report.average_freq_ghz:>6.3f} "
              f"{report.average_energy_mj:>7.3f}m {saving:>6.1f}x  "
              f"|{bar(report.average_energy_mj, top)}|"
              f"{' (!' + str(report.target_violations) + ' misses)' if report.target_violations else ''}")
    print("\nV/F scaling bottoms out once every post-prediction layer "
          "already runs at 0.5 V — exactly the plateau the paper shows at "
          "relaxed targets (Fig. 9, T=75/100 ms for QQP/SST-2).")


if __name__ == "__main__":
    main()
