"""Quickstart: latency-aware EdgeBERT inference on a few sentences.

Trains (or loads from cache) a tiny EdgeBERT model for SST-2-like
sentiment, then runs the full Algorithm-2 pipeline — entropy check after
layer 1, EE-predictor LUT, sentence-level DVFS on the simulated n=16
accelerator — and prints the per-sentence exit layer, operating point,
latency and energy.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.config import HwConfig, ModelConfig
from repro.core import LatencyAwareEngine, load_task_artifact
from repro.earlyexit import build_lut_for_threshold, calibrate_conventional

TARGET_MS = 75.0


def main():
    print("Loading the SST-2 artifact (first run trains it, ~5 min)...")
    artifact = load_task_artifact("sst2")
    print(f"  model: {artifact.model_config.num_layers} layers, "
          f"{artifact.model.num_parameters():,} parameters")
    print(f"  accuracy: {artifact.baseline_accuracy:.3f} "
          f"(teacher {artifact.teacher_accuracy:.3f})")
    print(f"  learned spans: {artifact.spans.round(0)}")

    # Calibrate the exit threshold at a 1 % accuracy budget and distill
    # the EE predictor into its LUT.
    calibration = calibrate_conventional(
        artifact.eval_logits, artifact.eval_entropies, artifact.eval_labels,
        max_drop_pct=1.0)
    lut = build_lut_for_threshold(
        artifact.train_entropies, calibration.threshold,
        artifact.eval_logits.shape[-1])
    print(f"  entropy threshold: {calibration.threshold:.2f} "
          f"(avg exit layer {calibration.average_exit_layer:.1f})")

    # Price Algorithm 2 on the paper-scale accelerator (ALBERT-base
    # dimensions, energy-optimal n = 16 design).
    engine = LatencyAwareEngine(ModelConfig.albert_base(),
                                HwConfig.energy_optimal())
    predictions = artifact.eval_logits.argmax(axis=-1)
    print(f"\nPer-sentence latency-aware inference (target {TARGET_MS} ms):")
    header = (f"{'sentence':>9} {'exit':>5} {'pred':>5} {'VDD':>6} "
              f"{'freq':>6} {'lat(ms)':>8} {'E(mJ)':>7} {'ok':>3}")
    print(header)
    for i in range(8):
        result = engine.run_latency_aware(
            artifact.eval_entropies[:, i], lut, calibration.threshold,
            TARGET_MS, prediction_at=lambda layer: predictions[layer - 1, i])
        print(f"{i:>9} {result.exit_layer:>5} {result.predicted_layer:>5} "
              f"{result.vdd:>6.3f} {result.freq_ghz:>6.3f} "
              f"{result.latency_ms:>8.2f} {result.energy_mj:>7.3f} "
              f"{'y' if result.met_target else 'N':>3}")

    report = engine.simulate_dataset(
        "lai", artifact.eval_logits, artifact.eval_entropies, lut=lut,
        entropy_threshold=calibration.threshold, target_ms=TARGET_MS)
    base = engine.simulate_dataset("base", artifact.eval_logits,
                                   artifact.eval_entropies)
    print(f"\nDataset averages: energy {report.average_energy_mj:.3f} mJ "
          f"(vs {base.average_energy_mj:.3f} mJ conventional = "
          f"{base.average_energy_mj / report.average_energy_mj:.1f}x less), "
          f"exit layer {report.average_exit_layer:.1f}, "
          f"VDD {report.average_vdd:.3f} V")


if __name__ == "__main__":
    main()
