"""Compare cluster scheduling policies on one synthetic traffic trace.

The same Poisson mixed-task trace (four tasks, three SLO classes,
~1 request/ms — about 3x what one accelerator sustains) is played
through the discrete-event simulator under FIFO, fewest-swaps affinity
routing, and EDF, at pool sizes 1 and 4. The table shows what each
policy trades: affinity buys back encoder-swap time, EDF reorders for
deadlines, and the pool size dominates the queueing delay everyone
pays.

Run:  python examples/cluster_traffic.py
"""

from repro.cluster import ClusterSimulator
from repro.config import GLUE_TASKS
from repro.serving import synthetic_registry, synthetic_traffic

NUM_REQUESTS = 600
SENTENCES_PER_TASK = 128
MEAN_INTERARRIVAL_MS = 1.0


def main():
    registry = synthetic_registry(GLUE_TASKS, n=SENTENCES_PER_TASK, seed=0)
    trace = synthetic_traffic(registry, NUM_REQUESTS, seed=1,
                              mean_interarrival_ms=MEAN_INTERARRIVAL_MS)
    span_ms = trace[-1].arrival_ms
    print(f"Trace: {len(trace)} requests over {span_ms:,.0f} ms "
          f"({len(GLUE_TASKS)} tasks, 3 SLO classes)")

    print(f"\n{'policy':>10s} {'pool':>4s} {'thr rps':>8s} "
          f"{'mean qd ms':>10s} {'p95 qd ms':>9s} {'SLO miss':>8s} "
          f"{'swaps':>5s} {'preempt':>7s} {'util':>5s}")
    for policy in ("fifo", "affinity", "edf"):
        for pool in (1, 4):
            report = ClusterSimulator(
                registry, num_accelerators=pool, policy=policy).run(trace)
            util = sum(a.utilization(report.makespan_ms)
                       for a in report.accelerators) / pool
            print(f"{policy:>10s} {pool:4d} {report.throughput_rps:8.1f} "
                  f"{report.mean_queueing_delay_ms:10.2f} "
                  f"{report.p95_queueing_delay_ms:9.2f} "
                  f"{report.deadline_violations:8d} "
                  f"{report.serving.task_switches:5d} "
                  f"{report.preemptions:7d} {util:5.2f}")

    # Where the misses come from at pool size 1 vs 4 (FIFO).
    for pool in (1, 4):
        report = ClusterSimulator(registry, num_accelerators=pool,
                                  policy="fifo").run(trace)
        breakdown = report.violation_breakdown()
        print(f"\nFIFO x{pool}: {breakdown['met']} met, "
              f"{breakdown['queueing']} queueing misses, "
              f"{breakdown['compute']} compute misses "
              f"(makespan {report.makespan_ms:,.0f} ms)")


if __name__ == "__main__":
    main()
