"""Serve a synthetic mixed-task traffic trace through `repro.serving`.

Four tasks' requests arrive interleaved with three latency-target
classes (50/75/100 ms). The scheduler groups them by (task, SLO class)
so the server pays one encoder-weight swap per task run instead of one
per request, and the eNVM-resident shared embeddings never move — the
paper's multi-task story at serving scale. Batches are priced by the
vectorized engine kernels.

Run:  python examples/serve_traffic.py
"""

from repro.config import GLUE_TASKS
from repro.serving import Scheduler, Server, synthetic_registry, \
    synthetic_traffic

NUM_REQUESTS = 1200
SENTENCES_PER_TASK = 400


def main():
    registry = synthetic_registry(GLUE_TASKS, n=SENTENCES_PER_TASK, seed=0)
    trace = synthetic_traffic(registry, NUM_REQUESTS, seed=1)
    print(f"Trace: {len(trace)} requests across {len(GLUE_TASKS)} tasks, "
          f"interleaved (naive switching would pay "
          f"{Scheduler.count_task_switches(trace)} swaps)")

    server = Server(registry, mode="lai")
    server.submit_many(trace)
    report = server.run()

    print(f"\nScheduled into {report.num_batches} batches, "
          f"{report.task_switches} task switches")
    print(f"{'Task':6s} {'reqs':>5s} {'avg exit':>9s} {'avg mJ':>8s} "
          f"{'avg ms':>7s} {'SLO miss':>8s}")
    for task, stats in sorted(report.per_task().items()):
        print(f"{task:6s} {stats['requests']:5d} "
              f"{stats['avg_exit_layer']:9.2f} "
              f"{stats['avg_energy_mj']:8.4f} "
              f"{stats['avg_latency_ms']:7.3f} "
              f"{stats['slo_violations']:8d}")

    print(f"\nAggregate: {report.num_requests} sentences in "
          f"{report.simulated_time_ms:.1f} ms simulated "
          f"({report.simulated_sentences_per_s:,.0f} sentences/s on the "
          f"accelerator), priced at {report.pricing_sentences_per_s:,.0f} "
          f"sentences/s on the host")
    print(f"Energy: {report.total_energy_mj:.2f} mJ total, "
          f"{report.switch_energy_mj * 1e3:.3f} uJ in task switches; "
          f"SLO violations: {report.slo_violations}")

    # What the eNVM residency buys on every one of those switches.
    edgebert = registry.switch_cost("mnli", "sst2")
    conventional = registry.conventional_switch_cost("mnli", "sst2")
    print(f"\nPer-switch cost (encoder swap only vs. +embedding reload):")
    print(f"  EdgeBERT eNVM-resident: {edgebert.energy_mj * 1e3:8.3f} uJ, "
          f"{edgebert.latency_ns / 1e3:7.2f} us")
    print(f"  conventional reload:    "
          f"{conventional.energy_mj * 1e3:8.3f} uJ, "
          f"{conventional.latency_ns / 1e3:7.2f} us "
          f"({conventional.energy_pj / max(edgebert.energy_pj, 1e-12):.1f}x "
          f"energy)")


if __name__ == "__main__":
    main()
