"""Fleet replay bench: energy-routed million-request serving at scale.

The fleet orchestrator's bulk front end routes runs of arrivals between
site-state-changing instants in one pass — epoch-memoized placement
estimates (one representative per distinct idle device class) instead
of a full idle-pool scan per request per site — while the sites price
their batches from whole-profile tables. The per-event front end
(``front_end="event"``) walks the same trace one heap event at a time
with the identical routing policy, so the two runs differ only in
drive mechanics; the bench asserts their reports agree exactly, which
is what makes the speedup a *replay* speedup rather than a semantic
change.

The configuration leans where edge fleets lean: large heterogeneous
pools (hundreds of devices per site) behind non-trivial RTTs with one
power-capped site, under a 10 req/ms diurnal arrival process — the
regime where per-request idle-pool scans dominate the per-event loop.

``benchmarks/BENCH_fleet_replay.json`` is the committed trajectory
baseline; the bench fails before overwriting it when fresh throughput
regresses more than :data:`REGRESSION_TOLERANCE`.

Gates (fail the bench before any reporting does):

* the 1M-request 3-site energy-routed replay completes in <= 60 s;
* the bulk front end is >= 10x faster than the per-event front end at
  N=100k on the same fleet;
* the 100k bulk and event fleet reports are identical;
* fresh 1M throughput is within 20% of the committed baseline.

Run:  pytest benchmarks/bench_fleet_replay.py -s
 or:  python benchmarks/bench_fleet_replay.py
"""

import gc
import json
import os
import resource
import time

from conftest import RESULTS_DIR, emit
from repro.cluster import generate_diurnal_trace
from repro.fleet import FleetOrchestrator, SiteConfig
from repro.serving import synthetic_registry
from repro.utils import format_table

TASKS = ("sst2", "mnli", "qqp", "qnli")
N_SENTENCES = 64
MEAN_INTERARRIVAL_MS = 0.1
#: Three sites, big pools: the idle-class census is what the bulk
#: scorer collapses, so the pool size is the per-event loop's cost.
SITE_POOLS = (384, 256, 192)
SITE_RTTS_MS = (2.0, 5.0, 8.0)
#: The farthest site runs power-capped, keeping the router's shaping
#: (headroom inflation) live on every scoring pass.
CAPPED_SITE_BUDGET_MW = 200.0
BATCH_TIMEOUT_MS = 40.0
MAX_BATCH = 128
REPLAY_REQUESTS = 1_000_000
SPEEDUP_REQUESTS = 100_000

MAX_REPLAY_SECONDS = 60.0
MIN_SPEEDUP = 10.0
REGRESSION_TOLERANCE = 0.20

BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "BENCH_fleet_replay.json")


def _require(condition, message):
    # Explicit check (not assert): the gate must still fire under -O.
    if not condition:
        raise AssertionError(message)


def _site_configs():
    caps = (None, None, CAPPED_SITE_BUDGET_MW)
    return [
        SiteConfig(f"edge-{chr(ord('a') + i)}",
                   num_accelerators=SITE_POOLS[i],
                   rtt_ms=SITE_RTTS_MS[i], policy="fifo",
                   deadline_aware=False,
                   batch_timeout_ms=BATCH_TIMEOUT_MS,
                   max_batch_size=MAX_BATCH,
                   energy_budget_mw=caps[i])
        for i in range(len(SITE_POOLS))
    ]


def _peak_rss_mb():
    # ru_maxrss is KB on Linux.
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _timed_run(registry, trace, front_end, repeats=1):
    """Best-of-``repeats`` wall clock with the GC parked outside the
    timed window (both front ends get the same treatment)."""
    wall = None
    for _ in range(repeats):
        fleet = FleetOrchestrator(registry, _site_configs(),
                                  routing="energy", front_end=front_end)
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            report = fleet.run(trace)
            elapsed = time.perf_counter() - started
        finally:
            gc.enable()
        if wall is None or elapsed < wall:
            wall = elapsed
    summary = report.summary()
    return report, {
        "front_end": front_end,
        "num_requests": len(trace),
        "wall_seconds": wall,
        "requests_per_second": len(trace) / wall,
        "makespan_ms": summary["makespan_ms"],
        "deferrals": summary["deferrals"],
        "deadline_violations": summary["deadline_violations"],
        "total_energy_mj": summary["total_energy_mj"],
    }


def run_benchmark(seed=0):
    """100k bulk-vs-event equivalence + speedup, then the 1M replay."""
    registry = synthetic_registry(TASKS, n=N_SENTENCES, seed=seed)

    small = generate_diurnal_trace(
        SPEEDUP_REQUESTS, seed=seed,
        mean_interarrival_ms=MEAN_INTERARRIVAL_MS)
    bulk_report, bulk = _timed_run(registry, small, "bulk")
    event_report, event = _timed_run(registry, small, "event")
    # The speedup only counts because the replays agree exactly.
    _require(json.dumps(bulk_report.summary(), sort_keys=True)
             == json.dumps(event_report.summary(), sort_keys=True),
             "bulk and event fleet reports differ")
    del small, bulk_report, event_report

    trace = generate_diurnal_trace(
        REPLAY_REQUESTS, seed=seed,
        mean_interarrival_ms=MEAN_INTERARRIVAL_MS)
    _, replay = _timed_run(registry, trace, "bulk")
    replay["peak_rss_mb"] = _peak_rss_mb()

    return {
        "config": {
            "tasks": list(TASKS),
            "site_pools": list(SITE_POOLS),
            "site_rtts_ms": list(SITE_RTTS_MS),
            "capped_site_budget_mw": CAPPED_SITE_BUDGET_MW,
            "routing": "energy",
            "site_policy": "fifo",
            "max_batch_size": MAX_BATCH,
            "batch_timeout_ms": BATCH_TIMEOUT_MS,
            "mean_interarrival_ms": MEAN_INTERARRIVAL_MS,
            "seed": seed,
        },
        "replay_1m": replay,
        "speedup_100k": {
            "bulk": bulk,
            "event": event,
            "speedup": event["wall_seconds"] / bulk["wall_seconds"],
            "reports_identical": True,
        },
    }


def _check_gates(record, baseline=None):
    replay = record["replay_1m"]
    _require(replay["wall_seconds"] <= MAX_REPLAY_SECONDS,
             f"1M fleet replay took {replay['wall_seconds']:.1f}s "
             f"(gate: <= {MAX_REPLAY_SECONDS:.0f}s)")
    speedup = record["speedup_100k"]["speedup"]
    _require(speedup >= MIN_SPEEDUP,
             f"bulk front end only {speedup:.1f}x over per-event "
             f"routing at N={SPEEDUP_REQUESTS:,} "
             f"(gate: >= {MIN_SPEEDUP:.0f}x)")
    if baseline is not None:
        base_rps = baseline["replay_1m"]["requests_per_second"]
        fresh_rps = replay["requests_per_second"]
        floor = base_rps * (1.0 - REGRESSION_TOLERANCE)
        _require(fresh_rps >= floor,
                 f"fleet replay throughput regressed: "
                 f"{fresh_rps:,.0f} req/s vs baseline "
                 f"{base_rps:,.0f} (floor {floor:,.0f})")


def _load_baseline():
    if not os.path.exists(BASELINE_PATH):
        return None
    with open(BASELINE_PATH, encoding="utf-8") as f:
        return json.load(f)


def _write_result(record):
    with open(BASELINE_PATH, "w", encoding="utf-8") as f:
        json.dump(record, f, indent=2, sort_keys=True)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "fleet_replay.json")
    with open(path, "w", encoding="utf-8") as f:
        json.dump(record, f, indent=2, sort_keys=True)
    return BASELINE_PATH


def _build_table(record):
    replay = record["replay_1m"]
    s = record["speedup_100k"]
    rows = [
        ["bulk", f"{replay['num_requests']:,}",
         f"{replay['wall_seconds']:.2f}",
         f"{replay['requests_per_second']:,.0f}",
         f"{replay['deferrals']:,}",
         f"{replay['peak_rss_mb']:.0f}"],
        ["bulk", f"{s['bulk']['num_requests']:,}",
         f"{s['bulk']['wall_seconds']:.2f}",
         f"{s['bulk']['requests_per_second']:,.0f}",
         f"{s['bulk']['deferrals']:,}", "-"],
        ["event", f"{s['event']['num_requests']:,}",
         f"{s['event']['wall_seconds']:.2f}",
         f"{s['event']['requests_per_second']:,.0f}",
         f"{s['event']['deferrals']:,}", "-"],
    ]
    return format_table(
        ["Front end", "Requests", "Wall (s)", "Req/s", "Deferrals",
         "Peak RSS (MB)"],
        rows,
        title=f"Fleet replay — 3 sites, {sum(SITE_POOLS)} devices, "
              f"energy routing, bulk/event speedup {s['speedup']:.1f}x")


def test_fleet_replay():
    baseline = _load_baseline()
    record = run_benchmark()
    _check_gates(record, baseline)
    _write_result(record)
    emit("fleet_replay", _build_table(record))


if __name__ == "__main__":
    baseline = _load_baseline()
    result = run_benchmark()
    _check_gates(result, baseline)
    path = _write_result(result)
    print(_build_table(result))
    print(f"\nwrote {path}")
