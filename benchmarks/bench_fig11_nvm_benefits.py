"""Fig. 11 — cost of reading the embeddings after system power-on.

Regenerates the comparison between the conventional path (DRAM read of
the multi-task embedding image + SRAM fill after every power cycle) and
the EdgeBERT path (embeddings statically resident in on-chip ReRAM; only
the sentence's token rows are read).

Paper reference: ~66,000x energy and ~50x latency advantage on a 1.73 MB
compressed image. Our model reproduces the orders of magnitude; the exact
energy ratio depends on read-granularity assumptions documented in
EXPERIMENTS.md.
"""

from conftest import emit
from repro.hw import power_on_embedding_cost
from repro.utils import format_table

PAPER_IMAGE_BYTES = int(1.73 * 2**20)


def run_comparison():
    return power_on_embedding_cost(image_bytes=PAPER_IMAGE_BYTES,
                                   sentence_rows=128, row_bytes=128,
                                   embedding_density=0.40)


def build_table(comparison):
    rows = [
        ["conventional (DRAM->SRAM)",
         f"{comparison.conventional_energy_pj / 1e6:.2f}",
         f"{comparison.conventional_latency_ns / 1e3:.1f}"],
        ["EdgeBERT (ReRAM resident)",
         f"{comparison.edgebert_energy_pj / 1e6:.5f}",
         f"{comparison.edgebert_latency_ns / 1e3:.2f}"],
        ["advantage",
         f"{comparison.energy_advantage:,.0f}x",
         f"{comparison.latency_advantage:.0f}x"],
        ["paper", "~66,000x", "~50x"],
    ]
    return format_table(["Path", "Energy (uJ)", "Latency (us)"], rows,
                        title="Fig. 11 — embedding reload cost after "
                              "power-on (1.73 MB multi-task image)")


def test_fig11_nvm_benefits(benchmark):
    comparison = benchmark(run_comparison)
    emit("fig11_nvm_benefits", build_table(comparison))

    # Orders-of-magnitude shape of the paper's claim.
    assert comparison.energy_advantage > 1e3
    assert 10 < comparison.latency_advantage < 500

    # Non-volatility scales with power cycles: two power-ons cost the
    # conventional path twice, EdgeBERT still only per-sentence reads.
    assert 2 * comparison.conventional_energy_pj \
        > 100 * comparison.edgebert_energy_pj
