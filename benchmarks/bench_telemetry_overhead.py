"""Telemetry overhead bench: tracing must be nearly free.

Replays a seeded 100k-request diurnal trace through the vectorized
engine five ways — untraced (the :data:`~repro.telemetry.NULL_TRACER`
fast path), traced with a default unbounded :class:`Tracer`, traced
with a spilling (bounded-memory) tracer, traced with metrics sampling
on top, and monitored (a :class:`~repro.telemetry.TelemetryMonitor`
with the stock rule set, no tracer) — and gates the default traced
run's wall clock at :data:`MAX_OVERHEAD` times the untraced one and
the monitored run at :data:`MAX_MONITOR_OVERHEAD` times it. The vector engine
reconstructs batch-granular spans from the replay plan, so the traced
run also re-verifies the observability contract at bench scale: its
report is bit-identical to the untraced one and the span-energy rollup
reconciles against the ledgers at 1e-9.

The spilling mode pays per-row JSON serialization on top of tracing
proper, so it is reported and trajectory-gated (vs the committed
baseline) rather than held to the ``MAX_OVERHEAD`` promise — it covers
tracing, the spill row prices the bounded-memory opt-in.

Wall clocks on shared machines drift within a run (thermal/noisy
neighbors), so each mode is re-run :data:`REPEATS` times with the mode
order flipped on alternate rounds. Reported wall clocks are best-of-N
and the overhead ratios are computed from them: the workload is
deterministic and CPU-bound, so each mode's minimum approaches its
true cost while medians and means absorb whatever noisy-neighbor
bursts landed in that round.

``benchmarks/BENCH_telemetry.json`` is the persisted perf-trajectory
artifact: the committed copy is the baseline, and the bench fails —
before overwriting it — when a fresh overhead ratio regresses more
than its margin beyond the baseline ratio.

Gates (fail the bench before any reporting does):

* traced (unbounded) wall clock <= ``MAX_OVERHEAD`` x untraced;
* monitored wall clock <= ``MAX_MONITOR_OVERHEAD`` x untraced;
* every traced/monitored variant's report bit-identical to untraced;
  the traced rollup reconciles at 1e-9; the spill cap actually engaged;
* fresh traced ratio within ``REGRESSION_MARGIN`` of the baseline,
  fresh spilling ratio within ``SPILL_REGRESSION_MARGIN`` of it.

Run:  pytest benchmarks/bench_telemetry_overhead.py -s
 or:  python benchmarks/bench_telemetry_overhead.py
"""

import gc
import json
import os
import tempfile
import time

from conftest import RESULTS_DIR, emit
from repro.cluster import ClusterSimulator, generate_diurnal_trace
from repro.serving import synthetic_registry
from repro.telemetry import (MetricsRegistry, TelemetryMonitor, Tracer,
                             default_rules, reconcile_cluster)
from repro.utils import format_table

TASKS = ("sst2", "mnli", "qqp", "qnli")
N_SENTENCES = 64
#: 40k requests/s across four tasks — batches size-close at the cap,
#: the saturated high-throughput regime the vector engine exists for.
MEAN_INTERARRIVAL_MS = 0.025
POOL = 64
MAX_BATCH = 64
TIMEOUT_MS = 15.0
NUM_REQUESTS = 100_000
#: In-memory span cap before the tracer streams to its JSONL spill —
#: small enough that the replay spills several times (the spill row
#: times the bounded-memory path, not an unbounded buffer).
SPILL_CAP = 4096
REPEATS = 9

#: Default traced wall clock may cost at most this factor over
#: untraced. Two things price this above the original 1.10: spans now
#: carry per-request attribution payloads (member ids, arrivals, exact
#: finish/energy columns — the journey stitcher's inputs; they ride as
#: numpy views and only box to lists at serialization), and the ratio
#: is machine-relative — on a runner where the numpy-heavy untraced
#: replay finishes 2x faster, the same fixed per-span Python cost
#: doubles as a fraction. The absolute gate must hold on the fastest
#: runner seen, not just the baseline box.
MAX_OVERHEAD = 1.25
#: Monitored (stock rule set) wall clock gate: the monitor does
#: windowed rule math per committed run, a bit dearer than span
#: emission — and machine-relative the same way the traced gate is.
MAX_MONITOR_OVERHEAD = 1.30
#: Fresh traced ratio may exceed the committed baseline ratio by at
#: most this much (absolute) before the bench fails — sized to machine
#: noise (interleaved best-of-N still wobbles a few percent).
REGRESSION_MARGIN = 0.10
#: The spilling ratio pays per-row JSON serialization of the full
#: per-request columns (an order of magnitude more bytes than the
#: pre-attribution span schema) and swings hardest with machine speed;
#: its trajectory margin is correspondingly the loosest.
SPILL_REGRESSION_MARGIN = 0.75

BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "BENCH_telemetry.json")


def _require(condition, message):
    # Explicit check (not assert): the gate must still fire under -O.
    if not condition:
        raise AssertionError(message)


def _canonical(report):
    return json.dumps(report.summary(), sort_keys=True)


def _one_run(registry, trace, tracer=None, metrics=False,
             monitor=None):
    """One timed replay; returns (elapsed_seconds, report)."""
    sim = ClusterSimulator(
        registry, num_accelerators=POOL, policy="fifo",
        max_batch_size=MAX_BATCH, batch_timeout_ms=TIMEOUT_MS,
        engine="vector", tracer=tracer,
        metrics=MetricsRegistry() if metrics else None,
        monitor=monitor)
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        report = sim.run(trace)
        elapsed = time.perf_counter() - started
    finally:
        gc.enable()
    return elapsed, report


def run_benchmark(seed=0):
    """Untraced vs traced/spilling/metered at 100k; returns record."""
    registry = synthetic_registry(TASKS, n=N_SENTENCES, seed=seed)
    trace = generate_diurnal_trace(
        NUM_REQUESTS, seed=seed,
        mean_interarrival_ms=MEAN_INTERARRIVAL_MS)

    with tempfile.TemporaryDirectory(prefix="bench_telemetry_") as tmp:
        spill = os.path.join(tmp, "spans.jsonl")
        modes = [
            ("untraced", lambda: (None, False, None)),
            ("traced", lambda: (Tracer(), False, None)),
            ("traced_spilling",
             lambda: (Tracer(max_spans=SPILL_CAP, spill_path=spill),
                      False, None)),
            ("traced_with_metrics", lambda: (Tracer(), True, None)),
            ("monitored",
             lambda: (None, False,
                      TelemetryMonitor(default_rules()))),
        ]
        best = {}
        reports = {}
        tracers = {}
        _one_run(registry, trace)  # warm caches outside the clock
        for round_no in range(REPEATS):
            # Flip the mode order on alternate rounds: slow machine
            # drift within a round then biases each mode both ways.
            ordering = modes if round_no % 2 == 0 else modes[::-1]
            for name, make in ordering:
                tracer, metrics, monitor = make()
                elapsed, report = _one_run(registry, trace,
                                           tracer=tracer,
                                           metrics=metrics,
                                           monitor=monitor)
                if name not in best or elapsed < best[name]:
                    best[name] = elapsed
                reports[name] = report
                if tracers.get(name) is not None:
                    tracers[name].close()
                tracers[name] = tracer

        # Contract checks at bench scale, while the tracers are live.
        base = _canonical(reports["untraced"])
        for name in ("traced", "traced_spilling",
                     "traced_with_metrics", "monitored"):
            _require(_canonical(reports[name]) == base,
                     f"{name} perturbed the 100k replay report")
        reconcile_cluster(tracers["traced"], reports["traced"],
                          tol=1e-9)
        _require(tracers["traced_spilling"].spilled > 0,
                 "spill cap never engaged at 100k")
        emitted = tracers["traced"].emitted
        for tracer in tracers.values():
            if tracer is not None:
                tracer.close()

    timings = {
        name: {
            "num_requests": NUM_REQUESTS,
            "wall_seconds": wall,
            "requests_per_second": NUM_REQUESTS / wall,
        }
        for name, wall in best.items()
    }
    def ratio(name):
        # Noise-floor comparison: the deterministic workload's best
        # wall approaches its true cost; any other statistic folds
        # noisy-neighbor bursts into the overhead it claims to price.
        return best[name] / best["untraced"]

    return {
        "config": {
            "tasks": list(TASKS),
            "num_accelerators": POOL,
            "policy": "fifo",
            "max_batch_size": MAX_BATCH,
            "batch_timeout_ms": TIMEOUT_MS,
            "mean_interarrival_ms": MEAN_INTERARRIVAL_MS,
            "num_requests": NUM_REQUESTS,
            "spill_cap": SPILL_CAP,
            "repeats": REPEATS,
            "seed": seed,
        },
        "untraced": timings["untraced"],
        "traced": timings["traced"],
        "traced_spilling": timings["traced_spilling"],
        "traced_with_metrics": timings["traced_with_metrics"],
        "monitored": timings["monitored"],
        "spans_emitted": emitted,
        "overhead_ratio": ratio("traced"),
        "overhead_spilling_ratio": ratio("traced_spilling"),
        "overhead_with_metrics_ratio": ratio("traced_with_metrics"),
        "overhead_monitored_ratio": ratio("monitored"),
    }


def _check_gates(record, baseline=None):
    ratio = record["overhead_ratio"]
    _require(ratio <= MAX_OVERHEAD,
             f"traced replay costs {ratio:.3f}x untraced "
             f"(gate: <= {MAX_OVERHEAD:.2f}x)")
    monitored = record["overhead_monitored_ratio"]
    _require(monitored <= MAX_MONITOR_OVERHEAD,
             f"monitored replay costs {monitored:.3f}x untraced "
             f"(gate: <= {MAX_MONITOR_OVERHEAD:.2f}x)")
    if baseline is not None:
        for key, margin in (("overhead_ratio", REGRESSION_MARGIN),
                            ("overhead_spilling_ratio",
                             SPILL_REGRESSION_MARGIN)):
            base_ratio = baseline.get(key)
            if base_ratio is None:
                continue
            ceiling = base_ratio + margin
            fresh = record[key]
            _require(fresh <= ceiling,
                     f"{key} regressed: {fresh:.3f}x vs baseline "
                     f"{base_ratio:.3f}x (ceiling {ceiling:.3f}x)")


def _load_baseline():
    if not os.path.exists(BASELINE_PATH):
        return None
    with open(BASELINE_PATH, encoding="utf-8") as f:
        return json.load(f)


def _write_result(record):
    with open(BASELINE_PATH, "w", encoding="utf-8") as f:
        json.dump(record, f, indent=2, sort_keys=True)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "telemetry_overhead.json")
    with open(path, "w", encoding="utf-8") as f:
        json.dump(record, f, indent=2, sort_keys=True)
    return BASELINE_PATH


def _build_table(record):
    rows = []
    for label, key, ratio_key in (
            ("untraced", "untraced", None),
            ("traced", "traced", "overhead_ratio"),
            ("traced (spilling)", "traced_spilling",
             "overhead_spilling_ratio"),
            ("traced + metrics", "traced_with_metrics",
             "overhead_with_metrics_ratio"),
            ("monitored", "monitored", "overhead_monitored_ratio")):
        timing = record[key]
        ratio = 1.0 if ratio_key is None else record[ratio_key]
        rows.append([label, f"{timing['wall_seconds']:.2f}",
                     f"{timing['requests_per_second']:,.0f}",
                     f"{ratio:.3f}x"])
    return format_table(
        ["Mode", "Wall (s)", "Req/s", "vs untraced"],
        rows,
        title=f"Telemetry overhead — {NUM_REQUESTS:,} requests, "
              f"{record['spans_emitted']:,} spans, spill cap "
              f"{SPILL_CAP}")


def test_telemetry_overhead():
    baseline = _load_baseline()
    record = run_benchmark()
    _check_gates(record, baseline)
    _write_result(record)
    emit("telemetry_overhead", _build_table(record))


if __name__ == "__main__":
    baseline = _load_baseline()
    result = run_benchmark()
    _check_gates(result, baseline)
    path = _write_result(result)
    print(_build_table(result))
    print(f"\nwrote {path}")
