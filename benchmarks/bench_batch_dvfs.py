"""Deadline-budget DVFS bench: batch planning vs per-sentence planning.

Two views of the same question — what does planning a whole batch
against its SLO deadline buy over planning every sentence independently?

* **Engine level**: one relaxed batch per SLO class, priced by
  :func:`~repro.core.engine.price_latency_aware_batch` (per-sentence)
  and :func:`~repro.core.engine.price_latency_aware_deadline_batch`
  (deadline budget derived the serving way, from the members'
  ``Request.deadline_ms``). This is the controlled before/after joules
  table the README quotes.
* **Cluster level**: the bursty reference trace replayed through the
  discrete-event simulator with and without ``deadline_aware=True``
  (same FIFO policy, same pool), comparing the lai traffic's priced
  compute energy and the end-to-end SLO violation count.

Gates (the ISSUE-4 acceptance criteria; fail before any reporting):

* the deadline planner uses **strictly fewer joules** than per-sentence
  planning on every relaxed SLO class, at **zero additional SLO
  violations** (engine and cluster level);
* the **zero-slack path reproduces per-sentence pricing to 1e-9**.

Run:  pytest benchmarks/bench_batch_dvfs.py -s
 or:  python benchmarks/bench_batch_dvfs.py
"""

import json
import os

import numpy as np

from conftest import RESULTS_DIR, emit
from repro.cluster import ClusterSimulator, load_trace
from repro.core.engine import (
    price_latency_aware_batch,
    price_latency_aware_deadline_batch,
)
from repro.energy.__main__ import reference_pool, reference_workload
from repro.serving import Batch, Request, batch_deadline_ms
from repro.utils import format_table

#: SLO classes priced at the engine level: (label, per-sentence target).
SLO_CLASSES = (("tight", 2.0), ("mid", 5.0), ("relaxed", 50.0),
               ("very-relaxed", 100.0))
# Eight sentences: big enough to amortize the batch rail, small enough
# that the relaxed classes' deadline budgets still cover the planner's
# conservative predicted-layer schedule (the plan reserves predicted
# work; actual exits only come earlier).
BATCH_SIZE = 8
BURSTY_TRACE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "traces", "reference_bursty.jsonl")


def _require(condition, message):
    # Explicit check (not assert): the gate must still fire under -O.
    if not condition:
        raise AssertionError(message)


def _engine_sweep(registry):
    """Per-sentence vs deadline pricing for one batch per SLO class."""
    task = registry.tasks[0]
    profile = registry.profile(task)
    tables = profile.engine.pricing_tables()
    entropies = profile.entropies[:, :BATCH_SIZE]

    rows = []
    for label, target_ms in SLO_CLASSES:
        batch = Batch(task=task, target_ms=target_ms, requests=tuple(
            Request(request_id=i, task=task, sentence=i,
                    target_ms=target_ms, arrival_ms=i * 0.25)
            for i in range(BATCH_SIZE)))
        deadline_ms = batch_deadline_ms(batch)
        per = price_latency_aware_batch(
            tables, profile.engine.dvfs, entropies, profile.lut,
            profile.entropy_threshold, target_ms)
        dead = price_latency_aware_deadline_batch(
            tables, profile.engine.dvfs, entropies, profile.lut,
            profile.entropy_threshold, target_ms, deadline_ms)
        rows.append({
            "slo_class": label,
            "target_ms": target_ms,
            "deadline_budget_ms": deadline_ms,
            "per_sentence_mj": float(per["energy_mj"].sum()),
            "deadline_mj": float(dead["energy_mj"].sum()),
            "per_sentence_latency_ms": float(per["latency_ms"].sum()),
            "deadline_latency_ms": float(dead["latency_ms"].sum()),
            "per_sentence_violations": int((~per["met_target"]).sum()),
            "deadline_violations": int((~dead["met_target"]).sum()),
            "deadline_avg_vdd": float(dead["vdd"].mean()),
            "per_sentence_avg_vdd": float(per["vdd"].mean()),
        })

    # The 1e-9 acceptance gate: a zero budget is per-sentence pricing.
    per = price_latency_aware_batch(
        tables, profile.engine.dvfs, entropies, profile.lut,
        profile.entropy_threshold, 50.0)
    zero = price_latency_aware_deadline_batch(
        tables, profile.engine.dvfs, entropies, profile.lut,
        profile.entropy_threshold, 50.0, 0.0)
    drift = max(
        float(np.max(np.abs(np.asarray(zero[key], dtype=np.float64)
                            - np.asarray(per[key], dtype=np.float64))))
        for key in per)
    return rows, drift


def _cluster_sweep(registry, pool):
    """The bursty trace with and without deadline-aware dispatch."""
    trace = load_trace(BURSTY_TRACE)
    out = {}
    for label, deadline_aware in (("per_sentence", False),
                                  ("deadline", True)):
        report = ClusterSimulator(registry, policy="fifo",
                                  hw_configs=pool,
                                  deadline_aware=deadline_aware).run(trace)
        _require(report.num_requests == len(trace),
                 f"{label} run failed to serve the whole trace")
        report.energy.reconcile(report.serving, tol=1e-9)
        lai = [rec for rec in report.records if rec.request.mode == "lai"]
        out[label] = {
            "total_energy_mj": report.energy.total_mj,
            "lai_requests": len(lai),
            "lai_compute_mj": float(sum(rec.result.energy_mj
                                        for rec in lai)),
            "deadline_violations": report.deadline_violations,
            "makespan_ms": report.makespan_ms,
        }
    return out


def run_benchmark(seed=0):
    registry, _ = reference_workload(num_requests=10, n_sentences=64,
                                     seed=seed)
    engine_rows, zero_slack_drift = _engine_sweep(registry)
    cluster = _cluster_sweep(registry, reference_pool())
    return {
        "batch_size": BATCH_SIZE,
        "engine_rows": engine_rows,
        "zero_slack_max_drift": zero_slack_drift,
        "cluster": cluster,
    }


def _check_gates(record):
    _require(record["zero_slack_max_drift"] <= 1e-9,
             "zero-slack path drifts from per-sentence pricing by "
             f"{record['zero_slack_max_drift']:.3e}")
    for row in record["engine_rows"]:
        _require(row["deadline_violations"]
                 <= row["per_sentence_violations"],
                 f"{row['slo_class']}: deadline planning added SLO "
                 "violations")
        if row["slo_class"] in ("relaxed", "very-relaxed"):
            _require(row["deadline_mj"]
                     < row["per_sentence_mj"] - 1e-12,
                     f"{row['slo_class']}: deadline planning is not "
                     "strictly cheaper: "
                     f"{row['deadline_mj']:.6f} vs "
                     f"{row['per_sentence_mj']:.6f} mJ")
        _require(row["deadline_mj"] <= row["per_sentence_mj"] + 1e-12,
                 f"{row['slo_class']}: deadline planning costs more")
    cluster = record["cluster"]
    per, dead = cluster["per_sentence"], cluster["deadline"]
    _require(dead["deadline_violations"] <= per["deadline_violations"],
             "deadline-aware dispatch added cluster SLO violations: "
             f"{dead['deadline_violations']} vs "
             f"{per['deadline_violations']}")
    _require(dead["lai_compute_mj"] < per["lai_compute_mj"] - 1e-9,
             "deadline-aware dispatch did not cut lai compute energy: "
             f"{dead['lai_compute_mj']:.6f} vs "
             f"{per['lai_compute_mj']:.6f} mJ")


def _write_result(record):
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "batch_dvfs.json")
    with open(path, "w", encoding="utf-8") as f:
        json.dump(record, f, indent=2, sort_keys=True)
    return path


def _build_table(record):
    rows = [
        [row["slo_class"], f"{row['target_ms']:.0f}",
         f"{row['per_sentence_mj']:.4f}", f"{row['deadline_mj']:.4f}",
         f"{100.0 * (1.0 - row['deadline_mj'] / row['per_sentence_mj']):.1f}%",
         f"{row['per_sentence_avg_vdd']:.3f}",
         f"{row['deadline_avg_vdd']:.3f}",
         f"{row['deadline_violations']}"]
        for row in record["engine_rows"]
    ]
    engine_table = format_table(
        ["SLO class", "Target (ms)", "Per-sentence (mJ)",
         "Deadline (mJ)", "Saving", "Vdd (per-sent)", "Vdd (deadline)",
         "SLO miss"],
        rows,
        title=f"Deadline-budget DVFS — one {record['batch_size']}-"
              "sentence batch per SLO class")
    cluster = record["cluster"]
    cluster_rows = [
        [label, f"{row['lai_compute_mj']:.4f}",
         f"{row['total_energy_mj']:.4f}",
         str(row["deadline_violations"]), f"{row['makespan_ms']:.0f}"]
        for label, row in cluster.items()
    ]
    cluster_table = format_table(
        ["Dispatch", "lai compute (mJ)", "Cluster total (mJ)",
         "SLO miss", "Makespan (ms)"],
        cluster_rows,
        title="Bursty reference trace — FIFO, per-sentence vs "
              "deadline-aware dispatch")
    return engine_table + "\n\n" + cluster_table


def test_batch_dvfs():
    record = run_benchmark()
    _check_gates(record)
    _write_result(record)
    emit("batch_dvfs", _build_table(record))


if __name__ == "__main__":
    result = run_benchmark()
    _check_gates(result)
    path = _write_result(result)
    print(_build_table(result))
    print(f"\nwrote {path}")
