"""Trace-analysis bench: stitching 100k journeys must stay cheap.

Replays a seeded 100k-request diurnal trace through the vectorized
engine with a tracer attached, writes the lossless JSONL span log, and
times :func:`repro.telemetry.analysis.analyze` stitching the whole log
into per-request journeys — the cold-start path an engineer hits when
pointing ``python -m repro.telemetry.analysis`` at an archived trace.
The profiling rollup (hot paths + both flamegraph exports) is timed on
top, so the full "span log on disk -> attributed profile" pipeline is
priced end to end.

While the stitched run is in memory the bench re-verifies the
package's contracts at scale — one journey per replayed request, leg
durations tiling time-in-system at 1e-9, energy attribution
reconciling against the replay ledgers at 1e-9, and the file-fed
analysis bit-identical to the live-tracer one.

``benchmarks/BENCH_trace_analysis.json`` is the persisted
perf-trajectory artifact: the committed copy is the baseline, and the
bench fails — before overwriting it — when a fresh wall clock
regresses past its gate.

Gates (fail the bench before any reporting does):

* stitching the 100k-request span log takes at most
  :data:`MAX_ANALYZE_SECONDS`;
* the profiling rollup on top takes at most
  :data:`MAX_PROFILE_SECONDS`;
* fresh walls stay within :data:`REGRESSION_FACTOR` x the committed
  baseline walls;
* all contract checks above hold.

Run:  pytest benchmarks/bench_trace_analysis.py -s
 or:  python benchmarks/bench_trace_analysis.py
"""

import gc
import json
import os
import tempfile
import time

from conftest import RESULTS_DIR, emit
from repro.cluster import ClusterSimulator, generate_diurnal_trace
from repro.serving import synthetic_registry
from repro.telemetry import Tracer, write_spans_jsonl
from repro.telemetry.analysis import (analyze, flamegraph_lines,
                                      hot_paths)
from repro.utils import format_table

TASKS = ("sst2", "mnli", "qqp", "qnli")
N_SENTENCES = 64
#: Same saturated high-throughput regime the telemetry-overhead bench
#: replays: 40k requests/s across four tasks on a 64-device pool.
MEAN_INTERARRIVAL_MS = 0.025
POOL = 64
MAX_BATCH = 64
TIMEOUT_MS = 15.0
NUM_REQUESTS = 100_000
REPEATS = 5

#: Stitching the 100k-request span log may take at most this long —
#: roughly 6x the observed cold wall on a shared dev box, so the gate
#: trips on algorithmic regressions (an accidental O(n^2) join), not
#: machine noise.
MAX_ANALYZE_SECONDS = 10.0
#: Hot-path rollup plus both flamegraph exports on the stitched run.
MAX_PROFILE_SECONDS = 6.0
#: Fresh walls may exceed the committed baseline by this factor.
REGRESSION_FACTOR = 1.8

BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "BENCH_trace_analysis.json")


def _require(condition, message):
    # Explicit check (not assert): the gate must still fire under -O.
    if not condition:
        raise AssertionError(message)


def _timed(fn):
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        result = fn()
        return time.perf_counter() - started, result
    finally:
        gc.enable()


def run_benchmark(seed=0):
    """Stitch + profile a 100k-request span log; returns the record."""
    registry = synthetic_registry(TASKS, n=N_SENTENCES, seed=seed)
    trace = generate_diurnal_trace(
        NUM_REQUESTS, seed=seed,
        mean_interarrival_ms=MEAN_INTERARRIVAL_MS)
    tracer = Tracer()
    sim = ClusterSimulator(
        registry, num_accelerators=POOL, policy="fifo",
        max_batch_size=MAX_BATCH, batch_timeout_ms=TIMEOUT_MS,
        engine="vector", tracer=tracer)
    report = sim.run(trace)

    with tempfile.TemporaryDirectory(prefix="bench_analysis_") as tmp:
        log = os.path.join(tmp, "spans.jsonl")
        n_spans = write_spans_jsonl(tracer, log)
        analyze(log)  # warm caches outside the clock
        analyze_wall, analysis = min(
            (_timed(lambda: analyze(log)) for _ in range(REPEATS)),
            key=lambda pair: pair[0])

    profile_wall, _ = min(
        (_timed(lambda: (hot_paths(analysis),
                         flamegraph_lines(analysis, weight="time"),
                         flamegraph_lines(analysis, weight="energy")))
         for _ in range(REPEATS)),
        key=lambda pair: pair[0])

    # Contract checks at bench scale, on the file-fed analysis.
    _require(len(analysis) == NUM_REQUESTS,
             f"stitched {len(analysis)} journeys for "
             f"{NUM_REQUESTS} requests")
    analysis.reconcile(report, tol=1e-9)
    for journey in analysis.journeys:
        journey.critical_path(tol=1e-9)
    live = analyze(tracer)
    _require(json.dumps(analysis.to_dict(), sort_keys=True)
             == json.dumps(live.to_dict(), sort_keys=True),
             "file-fed analysis diverges from the live tracer's")

    return {
        "config": {
            "tasks": list(TASKS),
            "num_accelerators": POOL,
            "policy": "fifo",
            "max_batch_size": MAX_BATCH,
            "batch_timeout_ms": TIMEOUT_MS,
            "mean_interarrival_ms": MEAN_INTERARRIVAL_MS,
            "num_requests": NUM_REQUESTS,
            "repeats": REPEATS,
            "seed": seed,
        },
        "spans": n_spans,
        "journeys": len(analysis),
        "analyze_seconds": analyze_wall,
        "journeys_per_second": NUM_REQUESTS / analyze_wall,
        "profile_seconds": profile_wall,
    }


def _check_gates(record, baseline=None):
    wall = record["analyze_seconds"]
    _require(wall <= MAX_ANALYZE_SECONDS,
             f"stitching 100k journeys took {wall:.2f}s "
             f"(gate: <= {MAX_ANALYZE_SECONDS:.1f}s)")
    profile = record["profile_seconds"]
    _require(profile <= MAX_PROFILE_SECONDS,
             f"profiling rollup took {profile:.2f}s "
             f"(gate: <= {MAX_PROFILE_SECONDS:.1f}s)")
    if baseline is not None:
        for key in ("analyze_seconds", "profile_seconds"):
            base_wall = baseline.get(key)
            if base_wall is None:
                continue
            ceiling = base_wall * REGRESSION_FACTOR
            _require(record[key] <= ceiling,
                     f"{key} regressed: {record[key]:.2f}s vs baseline "
                     f"{base_wall:.2f}s (ceiling {ceiling:.2f}s)")


def _load_baseline():
    if not os.path.exists(BASELINE_PATH):
        return None
    with open(BASELINE_PATH, encoding="utf-8") as f:
        return json.load(f)


def _write_result(record):
    with open(BASELINE_PATH, "w", encoding="utf-8") as f:
        json.dump(record, f, indent=2, sort_keys=True)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "trace_analysis.json")
    with open(path, "w", encoding="utf-8") as f:
        json.dump(record, f, indent=2, sort_keys=True)
    return BASELINE_PATH


def _build_table(record):
    rows = [
        ["stitch journeys", f"{record['analyze_seconds']:.2f}",
         f"{record['journeys_per_second']:,.0f}"],
        ["profile rollup", f"{record['profile_seconds']:.2f}", "-"],
    ]
    return format_table(
        ["Stage", "Wall (s)", "Journeys/s"],
        rows,
        title=f"Trace analysis — {record['journeys']:,} journeys from "
              f"{record['spans']:,} spans")


def test_trace_analysis():
    baseline = _load_baseline()
    record = run_benchmark()
    _check_gates(record, baseline)
    _write_result(record)
    emit("trace_analysis", _build_table(record))


if __name__ == "__main__":
    baseline = _load_baseline()
    result = run_benchmark()
    _check_gates(result, baseline)
    path = _write_result(result)
    print(_build_table(result))
    print(f"\nwrote {path}")
