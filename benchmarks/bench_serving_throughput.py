"""Serving-throughput bench: per-sentence loop vs. vectorized kernels.

Prices N = 2000 sentences of paper-scale (ALBERT-base) LAI inference two
ways — the scalar reference loop and the batch kernels — and records
sentences/sec for each plus the speedup in
``benchmarks/results/serving_throughput.json``. The vectorized path is
required to be at least 5x faster; the two paths are also cross-checked
for result equality, so a correctness regression in either fails the
bench before any timing does.

Run:  pytest benchmarks/bench_serving_throughput.py -s
 or:  python benchmarks/bench_serving_throughput.py
"""

import json
import os
import time

from conftest import RESULTS_DIR, emit
from repro.config import HwConfig, ModelConfig
from repro.core import LatencyAwareEngine
from repro.earlyexit import ExitPredictorLUT, true_exit_layers
from repro.serving import synthetic_layer_outputs
from repro.utils import format_table

N_SENTENCES = 2000
TARGET_MS = 75.0
THRESHOLD = 0.25
MIN_SPEEDUP = 5.0


def _require(condition, message):
    # Explicit check (not assert): the gate must still fire under -O.
    if not condition:
        raise AssertionError(message)


def _setup(n=N_SENTENCES, seed=0):
    logits, entropies, _ = synthetic_layer_outputs(n, num_layers=12,
                                                   num_classes=2, seed=seed)
    engine = LatencyAwareEngine(ModelConfig.albert_base(),
                                HwConfig(mac_vector_size=16))
    exits = true_exit_layers(entropies, THRESHOLD)
    lut = ExitPredictorLUT.from_samples(entropies[0], exits, 2, 12, margin=1)
    return engine, logits, entropies, lut


def _time_mode(engine, logits, entropies, lut, vectorized):
    engine.pricing_tables()  # exclude one-time table build from both paths
    start = time.perf_counter()
    report = engine.simulate_dataset(
        "lai", logits, entropies, lut=lut, entropy_threshold=THRESHOLD,
        target_ms=TARGET_MS, vectorized=vectorized)
    elapsed = time.perf_counter() - start
    return report, elapsed


def run_benchmark(n=N_SENTENCES, seed=0):
    """Time both paths, verify equivalence, return the JSON record."""
    engine, logits, entropies, lut = _setup(n, seed)
    loop_report, loop_s = _time_mode(engine, logits, entropies, lut,
                                     vectorized=False)
    vec_report, vec_s = _time_mode(engine, logits, entropies, lut,
                                   vectorized=True)

    for a, b in zip(loop_report.results, vec_report.results):
        _require(a.exit_layer == b.exit_layer, "exit layer diverged")
        _require(abs(a.energy_mj - b.energy_mj) <= 1e-9, "energy diverged")
        _require(abs(a.latency_ms - b.latency_ms) <= 1e-9,
                 "latency diverged")

    return {
        "n_sentences": n,
        "mode": "lai",
        "target_ms": TARGET_MS,
        "loop_seconds": loop_s,
        "vectorized_seconds": vec_s,
        "loop_sentences_per_s": n / loop_s,
        "vectorized_sentences_per_s": n / vec_s,
        "speedup": loop_s / vec_s,
    }


def _write_result(record):
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "serving_throughput.json")
    with open(path, "w", encoding="utf-8") as f:
        json.dump(record, f, indent=2, sort_keys=True)
    return path


def _build_table(record):
    rows = [
        ["per-sentence loop", f"{record['loop_sentences_per_s']:,.0f}",
         f"{record['loop_seconds']:.3f}"],
        ["vectorized kernels",
         f"{record['vectorized_sentences_per_s']:,.0f}",
         f"{record['vectorized_seconds']:.3f}"],
    ]
    return format_table(
        ["Pricing path", "Sentences/s", "Seconds"], rows,
        title=f"Serving throughput — N={record['n_sentences']} LAI "
              f"sentences, speedup {record['speedup']:.1f}x")


def test_serving_throughput():
    record = run_benchmark()
    _write_result(record)
    emit("serving_throughput", _build_table(record))
    _require(record["speedup"] >= MIN_SPEEDUP, record)


if __name__ == "__main__":
    result = run_benchmark()
    path = _write_result(result)
    print(_build_table(result))
    print(f"\nwrote {path}")
    _require(result["speedup"] >= MIN_SPEEDUP, result)
