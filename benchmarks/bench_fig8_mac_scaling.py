"""Fig. 8 — latency and energy vs. PU MAC vector size.

Regenerates, per task: per-sentence latency (top row) and energy (bottom
row) for n ∈ {2,4,8,16,32} in base / +AAS / +AAS+Sparse modes, next to
the TX2 mobile-GPU baseline (base / +AAS).

Paper reference shapes: latency drops ~3.5-4x per doubling of n; the
energy-optimal design is n = 16; AAS buys ~1.2x latency / 1.1x energy;
sparse execution another 1.4-1.7x energy; the n = 16 design beats the
mGPU latency and is ~53x lower energy with all optimizations.
"""

from conftest import PAPER_ENCODER_SPARSITY, PAPER_SPANS, emit
from repro.config import GLUE_TASKS, ModelConfig
from repro.hw import (
    DEFAULT_VECTOR_SIZES,
    TaskSetting,
    energy_optimal_vector_size,
    sweep_design_space,
)
from repro.utils import format_table


def run_sweeps():
    config = ModelConfig.albert_base()
    sweeps = {}
    for task in GLUE_TASKS:
        setting = TaskSetting(
            task, PAPER_SPANS[task],
            encoder_density=1.0 - PAPER_ENCODER_SPARSITY[task])
        sweeps[task] = sweep_design_space(config, setting, num_layers=12,
                                          seq_len=128)
    return sweeps


def build_table(sweeps):
    headers = ["Task", "Mode"] + [f"n={n}" for n in DEFAULT_VECTOR_SIZES] \
        + ["mGPU"]
    lat_rows, energy_rows = [], []
    for task in GLUE_TASKS:
        points, mgpu = sweeps[task]
        for mode in ("base", "aas", "aas_sparse"):
            by_n = {p.vector_size: p for p in points if p.mode == mode}
            gpu = mgpu["aas" if mode != "base" else "base"]
            lat_rows.append(
                [task, mode]
                + [f"{by_n[n].latency_ms:.1f}" for n in DEFAULT_VECTOR_SIZES]
                + [f"{gpu.latency_ms:.1f}"])
            energy_rows.append(
                [task, mode]
                + [f"{by_n[n].energy_mj:.2f}" for n in DEFAULT_VECTOR_SIZES]
                + [f"{gpu.energy_mj:.1f}"])
    top = format_table(headers, lat_rows,
                       title="Fig. 8 (top) — per-sentence latency (ms) vs "
                             "MAC vector size")
    bottom = format_table(headers, energy_rows,
                          title="Fig. 8 (bottom) — per-sentence energy (mJ) "
                                "vs MAC vector size")
    return top + "\n\n" + bottom


def test_fig8_mac_scaling(benchmark):
    sweeps = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)
    emit("fig8_mac_scaling", build_table(sweeps))

    for task in GLUE_TASKS:
        points, mgpu = sweeps[task]
        # Energy-optimal design point is n = 16 in every mode.
        for mode in ("base", "aas", "aas_sparse"):
            assert energy_optimal_vector_size(points, mode) == 16

        by16 = {p.mode: p for p in points if p.vector_size == 16}
        # AAS latency/energy benefit (paper: up to 1.2x / 1.1x).
        lat_gain = by16["base"].latency_ms / by16["aas"].latency_ms
        energy_gain = by16["base"].energy_mj / by16["aas"].energy_mj
        assert 1.05 < lat_gain < 1.35
        assert 1.05 < energy_gain < 1.35
        # Sparse execution energy benefit (paper: 1.4-1.7x, QQP highest).
        sparse_gain = by16["aas"].energy_mj / by16["aas_sparse"].energy_mj
        assert 1.25 < sparse_gain < 1.9
        # n = 16 beats the mGPU's latency; n = 4 does not (paper Sec 8.2.1).
        assert by16["aas"].latency_ms < mgpu["aas"].latency_ms
        by4 = {p.mode: p for p in points if p.vector_size == 4}
        assert by4["aas"].latency_ms > mgpu["aas"].latency_ms
        # All-optimizations energy gap to the mGPU is tens-of-x (~53x).
        gap = mgpu["aas"].energy_mj / by16["aas_sparse"].energy_mj
        assert 30.0 < gap < 85.0

    # QQP (80 % sparsity) benefits from sparse execution the most.
    def sparse_gain(task):
        points, _ = sweeps[task]
        by16 = {p.mode: p for p in points if p.vector_size == 16}
        return by16["aas"].energy_mj / by16["aas_sparse"].energy_mj

    assert sparse_gain("qqp") == max(sparse_gain(t) for t in GLUE_TASKS)
