"""Fleet-routing bench: joules vs SLO across multi-site routing policies.

Replays the anonymized bursty reference trace
(``benchmarks/traces/reference_bursty.jsonl`` — diurnal-ish rate with
three superimposed bursts, 477 requests) across the reference 3-site
fleet: a close-by site with the big tight-SLO device (n=32/16), a
mid-distance energy-optimal site (n=16/16), and a far small site
(n=16/8) under a 30 mW rolling power cap. Every run uses the device
autoscaler, so scaling transitions are part of the bill. Recorded per
routing policy: total fleet energy with its per-site breakdown, SLO
violations, routing deferrals, capped-site budget activity, parks and
wakes — written to ``benchmarks/results/fleet_routing.json``.

Gates (the ISSUE-5 acceptance criteria; fail before any reporting):

* **energy/deadline-aware routing strictly beats round-robin on total
  joules** at an **equal-or-fewer SLO violation count**;
* the **power-capped site never exceeds its cap** under the energy
  policy (zero window overshoots — admission shaping diverted traffic
  before the window filled);
* every policy serves the whole trace and every report's energy rollup
  reconciles with the summed per-site cluster ledgers within 1e-9.

Run:  pytest benchmarks/bench_fleet_routing.py -s
 or:  python benchmarks/bench_fleet_routing.py
"""

import json
import os

from conftest import RESULTS_DIR, emit
from repro.cluster import load_trace
from repro.config import GLUE_TASKS
from repro.fleet import FleetAutoscaler, FleetOrchestrator
from repro.fleet.__main__ import reference_fleet
from repro.serving import synthetic_registry
from repro.utils import format_table

POLICIES = ("round-robin", "least-loaded", "energy")
CAPPED_SITE = "edge-c"
BURSTY_TRACE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "traces", "reference_bursty.jsonl")


def _require(condition, message):
    # Explicit check (not assert): the gate must still fire under -O.
    if not condition:
        raise AssertionError(message)


def run_benchmark(seed=0):
    """Sweep the routing policies on the bursty replay; returns JSON."""
    trace = load_trace(BURSTY_TRACE)
    n_sentences = max(r.sentence for r in trace) + 1
    registry = synthetic_registry(GLUE_TASKS, n=max(8, n_sentences),
                                  seed=seed)
    rows = []
    for policy in POLICIES:
        fleet = FleetOrchestrator(registry, reference_fleet(),
                                  routing=policy,
                                  autoscaler=FleetAutoscaler())
        report = fleet.run(trace)
        _require(report.num_requests == len(trace),
                 f"{policy} failed to serve the whole bursty trace")
        report.reconcile(tol=1e-9)
        capped = report.site(CAPPED_SITE).report
        stats = report.autoscaler
        rows.append({
            "policy": policy,
            "total_energy_mj": report.total_energy_mj,
            "deadline_violations": report.deadline_violations,
            "deferrals": report.deferrals,
            "mean_time_in_system_ms": report.mean_time_in_system_ms,
            "p95_time_in_system_ms": report.p95_time_in_system_ms,
            "makespan_ms": report.makespan_ms,
            "per_site": report.per_site(),
            "capped_site_overshoots": capped.budget.overshoots,
            "capped_site_throttles": capped.budget.throttle_events,
            "parks": sum(stats.parks.values()),
            "wakes": sum(stats.wakes.values()),
            "wall_seconds": report.wall_seconds,
        })
    return {
        "trace": os.path.relpath(BURSTY_TRACE,
                                 os.path.dirname(RESULTS_DIR)),
        "num_requests": len(trace),
        "capped_site": CAPPED_SITE,
        "sites": {c.site_id: {
            "rtt_ms": c.rtt_ms,
            "mac_vector_sizes": [hw.mac_vector_size
                                 for hw in c.hw_configs],
            "energy_budget_mw": c.energy_budget_mw,
        } for c in reference_fleet()},
        "rows": rows,
    }


def _row_for(record, policy):
    for row in record["rows"]:
        if row["policy"] == policy:
            return row
    raise AssertionError(f"no row for policy {policy!r}")


def _check_gates(record):
    rr = _row_for(record, "round-robin")
    energy = _row_for(record, "energy")
    _require(energy["total_energy_mj"] < rr["total_energy_mj"],
             "energy routing does not strictly beat round-robin on "
             f"joules: {energy['total_energy_mj']:.6f} vs "
             f"{rr['total_energy_mj']:.6f} mJ")
    _require(energy["deadline_violations"] <= rr["deadline_violations"],
             "energy routing misses more SLOs than round-robin: "
             f"{energy['deadline_violations']} vs "
             f"{rr['deadline_violations']}")
    _require(energy["capped_site_overshoots"] == 0,
             "the power-capped site exceeded its cap under energy "
             f"routing ({energy['capped_site_overshoots']} overshoots)")


def _write_result(record):
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "fleet_routing.json")
    with open(path, "w", encoding="utf-8") as f:
        json.dump(record, f, indent=2, sort_keys=True)
    return path


def _build_table(record):
    rows = []
    for row in record["rows"]:
        spread = "/".join(str(row["per_site"][sid]["requests"])
                          for sid in sorted(row["per_site"]))
        rows.append([
            row["policy"], f"{row['total_energy_mj']:.4f}",
            str(row["deadline_violations"]), str(row["deferrals"]),
            spread, str(row["capped_site_overshoots"]),
            str(row["parks"]), f"{row['p95_time_in_system_ms']:.2f}",
        ])
    return format_table(
        ["Routing", "Total (mJ)", "SLO miss", "Defers",
         "Req a/b/c", "Cap overshoots", "Parks", "p95 (ms)"],
        rows,
        title=(f"Fleet routing — bursty reference trace "
               f"({record['num_requests']} requests, 3 sites, "
               f"{record['capped_site']} capped)"))


def test_fleet_routing():
    record = run_benchmark()
    _check_gates(record)
    _write_result(record)
    emit("fleet_routing", _build_table(record))


if __name__ == "__main__":
    result = run_benchmark()
    _check_gates(result)
    path = _write_result(result)
    print(_build_table(result))
    print(f"\nwrote {path}")
