"""Replay-engine bench: million-request traces through the vector core.

Generates a seeded 1M-request diurnal trace (sinusoidal epoch-batched
arrivals, ``repro.cluster.generate_diurnal_trace``) and replays it
through the batch-granular vectorized engine on a 64-accelerator FIFO
pool, recording wall-clock, sustained requests/sec and peak RSS. A
second 100k-request replay runs under both engines — ``vector`` and the
retained scalar ``oracle`` loop — to measure the speedup the
vectorization buys.

``benchmarks/BENCH_replay.json`` is the repo's first persisted
perf-*trajectory* artifact: the committed copy is the baseline, and the
bench fails — before overwriting it — when fresh throughput regresses
more than :data:`REGRESSION_TOLERANCE` against it. Speed regressions
gate like correctness from now on.

Gates (fail the bench before any reporting does):

* the 1M-request replay completes in <= 30 s single-process;
* the vectorized engine is >= 50x faster than the scalar oracle at
  N=100k;
* fresh 1M throughput is within 20% of the committed baseline.

Run:  pytest benchmarks/bench_replay_engine.py -s
 or:  python benchmarks/bench_replay_engine.py
"""

import gc
import json
import os
import resource
import time

from conftest import RESULTS_DIR, emit
from repro.cluster import ClusterSimulator, generate_diurnal_trace
from repro.serving import synthetic_registry
from repro.utils import format_table

TASKS = ("sst2", "mnli", "qqp", "qnli")
N_SENTENCES = 64
#: Near-capacity offered load for the 64-device pool: 10k req/s keeps
#: windows filling by timeout/size (avg batch ~14) without queue
#: blow-up, so the bench measures engine overhead, not saturation.
MEAN_INTERARRIVAL_MS = 0.1
POOL = 64
MAX_BATCH = 32
TIMEOUT_MS = 15.0
REPLAY_REQUESTS = 1_000_000
SPEEDUP_REQUESTS = 100_000

MAX_REPLAY_SECONDS = 30.0
MIN_SPEEDUP = 50.0
#: Fractional throughput loss vs. the committed baseline that fails the
#: bench (tier-2 perf-trajectory gate).
REGRESSION_TOLERANCE = 0.20

#: The committed perf-trajectory baseline this bench gates against
#: (and refreshes once the gates pass).
BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "BENCH_replay.json")


def _require(condition, message):
    # Explicit check (not assert): the gate must still fire under -O.
    if not condition:
        raise AssertionError(message)


def _simulator(registry, engine):
    return ClusterSimulator(
        registry, num_accelerators=POOL, policy="fifo",
        max_batch_size=MAX_BATCH, batch_timeout_ms=TIMEOUT_MS,
        engine=engine)


def _peak_rss_mb():
    # ru_maxrss is KB on Linux.
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _timed_replay(registry, trace, engine, repeats=1):
    """Best-of-``repeats`` wall clock (the standard noise filter for
    short timing windows; the runs are deterministic, so only the
    fastest one reflects the engine rather than the machine)."""
    wall = None
    for _ in range(repeats):
        sim = _simulator(registry, engine)
        # Collect, then keep the collector out of the timed window: a
        # cyclic-GC pass over the host process's heap (pytest holds a
        # big one) lands arbitrarily inside short windows. Both
        # engines get the same treatment.
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            report = sim.run(trace)
            elapsed = time.perf_counter() - started
        finally:
            gc.enable()
        if wall is None or elapsed < wall:
            wall = elapsed
    return {
        "engine": report.engine,
        "num_requests": len(trace),
        "wall_seconds": wall,
        "requests_per_second": len(trace) / wall,
        "num_batches": report.num_batches,
        "makespan_ms": report.makespan_ms,
    }


def run_benchmark(seed=0):
    """100k vector-vs-oracle + 1M vector replay; returns the record."""
    registry = synthetic_registry(TASKS, n=N_SENTENCES, seed=seed)

    # The speedup pair runs first, on a clean heap: a million live
    # request objects from the big replay would tax every full GC pass
    # inside the much shorter 100k timing windows. A full (all-epochs)
    # diurnal trace at 100k, not a prefix of the 1M one — a prefix
    # covers only the day curve's low-rate ramp.
    small = generate_diurnal_trace(
        SPEEDUP_REQUESTS, seed=seed,
        mean_interarrival_ms=MEAN_INTERARRIVAL_MS)
    vector = _timed_replay(registry, small, "vector", repeats=3)
    oracle = _timed_replay(registry, small, "oracle")
    del small

    trace = generate_diurnal_trace(
        REPLAY_REQUESTS, seed=seed,
        mean_interarrival_ms=MEAN_INTERARRIVAL_MS)
    # Best-of-2 so the committed trajectory baseline and every future
    # comparison both measure the engine, not transient machine load.
    replay = _timed_replay(registry, trace, "vector", repeats=2)
    replay["peak_rss_mb"] = _peak_rss_mb()

    return {
        "config": {
            "tasks": list(TASKS),
            "num_accelerators": POOL,
            "policy": "fifo",
            "max_batch_size": MAX_BATCH,
            "batch_timeout_ms": TIMEOUT_MS,
            "mean_interarrival_ms": MEAN_INTERARRIVAL_MS,
            "seed": seed,
        },
        "replay_1m": replay,
        "speedup_100k": {
            "vector": vector,
            "oracle": oracle,
            "speedup": oracle["wall_seconds"] / vector["wall_seconds"],
        },
    }


def _check_gates(record, baseline=None):
    replay = record["replay_1m"]
    _require(replay["wall_seconds"] <= MAX_REPLAY_SECONDS,
             f"1M-request replay took {replay['wall_seconds']:.1f}s "
             f"(gate: <= {MAX_REPLAY_SECONDS:.0f}s)")
    speedup = record["speedup_100k"]["speedup"]
    _require(speedup >= MIN_SPEEDUP,
             f"vector engine only {speedup:.1f}x over the oracle at "
             f"N={SPEEDUP_REQUESTS:,} (gate: >= {MIN_SPEEDUP:.0f}x)")
    if baseline is not None:
        base_rps = baseline["replay_1m"]["requests_per_second"]
        fresh_rps = replay["requests_per_second"]
        floor = base_rps * (1.0 - REGRESSION_TOLERANCE)
        _require(fresh_rps >= floor,
                 f"replay throughput regressed: {fresh_rps:,.0f} req/s "
                 f"vs baseline {base_rps:,.0f} (floor {floor:,.0f})")


def _load_baseline():
    if not os.path.exists(BASELINE_PATH):
        return None
    with open(BASELINE_PATH, encoding="utf-8") as f:
        return json.load(f)


def _write_result(record):
    with open(BASELINE_PATH, "w", encoding="utf-8") as f:
        json.dump(record, f, indent=2, sort_keys=True)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "replay_engine.json")
    with open(path, "w", encoding="utf-8") as f:
        json.dump(record, f, indent=2, sort_keys=True)
    return BASELINE_PATH


def _build_table(record):
    replay = record["replay_1m"]
    s = record["speedup_100k"]
    rows = [
        ["vector", f"{replay['num_requests']:,}",
         f"{replay['wall_seconds']:.2f}",
         f"{replay['requests_per_second']:,.0f}",
         f"{replay['peak_rss_mb']:.0f}"],
        ["vector", f"{s['vector']['num_requests']:,}",
         f"{s['vector']['wall_seconds']:.2f}",
         f"{s['vector']['requests_per_second']:,.0f}", "-"],
        ["oracle", f"{s['oracle']['num_requests']:,}",
         f"{s['oracle']['wall_seconds']:.2f}",
         f"{s['oracle']['requests_per_second']:,.0f}", "-"],
    ]
    return format_table(
        ["Engine", "Requests", "Wall (s)", "Req/s", "Peak RSS (MB)"],
        rows,
        title=f"Replay engine — diurnal trace, {POOL} accels, "
              f"vector/oracle speedup {s['speedup']:.1f}x")


def test_replay_engine():
    baseline = _load_baseline()
    record = run_benchmark()
    _check_gates(record, baseline)
    _write_result(record)
    emit("replay_engine", _build_table(record))


if __name__ == "__main__":
    baseline = _load_baseline()
    result = run_benchmark()
    _check_gates(result, baseline)
    path = _write_result(result)
    print(_build_table(result))
    print(f"\nwrote {path}")
