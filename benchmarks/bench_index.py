"""Perf-trajectory index: one machine-readable view of BENCH_*.json.

Each perf bench that gates a trajectory persists its committed
artifact as ``benchmarks/BENCH_<name>.json`` (currently the replay
engine and telemetry overhead benches). This script folds every such
artifact into ``benchmarks/BENCH_index.json`` so tooling can read the
whole trajectory from one file — per artifact it records the source
file and the flattened scalar leaves (dotted keys), which is exactly
the set of numbers a trend plot or regression diff would want.

The index is deterministic: artifacts sort by name, keys sort within
each artifact, and no timestamps are stamped (the sim-clock rule —
artifacts change only when a bench reruns and commits new numbers).

``--check`` turns the index into a gatekeeper: every gated bench
(the modules in :data:`GATED_BENCHES`, which all expose the
``run_benchmark`` / ``_check_gates`` / ``_load_baseline`` convention)
is re-run fresh and its gates re-evaluated; any violation exits 1.
``--check --quick`` skips the fresh runs and instead re-evaluates each
committed baseline against its own absolute gates — a seconds-fast
parse-and-validate pass suited to tier-1 CI (a committed artifact that
violates its own gates, or a gated bench with no committed artifact,
still fails).

Run:  pytest benchmarks/bench_index.py -s
 or:  python benchmarks/bench_index.py [--check [--quick]]
"""

import argparse
import glob
import importlib
import json
import os
import sys

from conftest import RESULTS_DIR, emit
from repro.utils import format_table

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
INDEX_PATH = os.path.join(BENCH_DIR, "BENCH_index.json")

#: Committed artifact name -> bench module that gates it. Every module
#: listed here follows the shared convention: ``BASELINE_PATH``,
#: ``run_benchmark(seed=0)``, ``_check_gates(record, baseline=None)``
#: raising AssertionError on violation, and ``_load_baseline()``.
GATED_BENCHES = {
    "replay": "bench_replay_engine",
    "replay_budget": "bench_replay_budget",
    "fleet_replay": "bench_fleet_replay",
    "telemetry": "bench_telemetry_overhead",
    "trace_analysis": "bench_trace_analysis",
}


def _flatten(value, prefix=""):
    """Yield (dotted_key, scalar) leaves of a JSON value, depth-first.

    Lists flatten by index; only scalar leaves (numbers, strings,
    booleans, null) are emitted — the index carries every measured
    number without guessing which ones matter.
    """
    if isinstance(value, dict):
        for key in sorted(value):
            dotted = f"{prefix}.{key}" if prefix else str(key)
            yield from _flatten(value[key], dotted)
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            yield from _flatten(item, f"{prefix}.{i}" if prefix
                                else str(i))
    else:
        yield prefix, value


def build_index():
    """Read every committed BENCH_*.json; return the index record."""
    artifacts = {}
    pattern = os.path.join(BENCH_DIR, "BENCH_*.json")
    for path in sorted(glob.glob(pattern)):
        if os.path.abspath(path) == INDEX_PATH:
            continue
        name = os.path.basename(path)[len("BENCH_"):-len(".json")]
        with open(path, encoding="utf-8") as f:
            record = json.load(f)
        artifacts[name] = {
            "file": os.path.basename(path),
            "metrics": dict(_flatten(record)),
        }
    return {"artifacts": artifacts, "num_artifacts": len(artifacts)}


def _write_index(index):
    with open(INDEX_PATH, "w", encoding="utf-8") as f:
        json.dump(index, f, indent=2, sort_keys=True)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "bench_index.json"), "w",
              encoding="utf-8") as f:
        json.dump(index, f, indent=2, sort_keys=True)
    return INDEX_PATH


def _build_table(index):
    rows = [[name, entry["file"], str(len(entry["metrics"]))]
            for name, entry in sorted(index["artifacts"].items())]
    return format_table(
        ["Artifact", "File", "Scalar metrics"], rows,
        title=f"Perf-trajectory index — "
              f"{index['num_artifacts']} committed artifacts")


def check_gates(quick=False):
    """Re-evaluate every gated bench; return (rows, failures).

    ``quick`` checks each committed baseline against its own absolute
    gates without re-running anything (the baseline doubles as the
    fresh record, so regression floors compare it to itself and pass
    trivially — the absolute gates still bite). A missing baseline is
    a failure either way: a gated trajectory with no committed
    artifact is a broken trajectory.
    """
    rows, failures = [], []
    for name in sorted(GATED_BENCHES):
        module = importlib.import_module(GATED_BENCHES[name])
        baseline = module._load_baseline()
        if baseline is None:
            detail = f"missing {os.path.basename(module.BASELINE_PATH)}"
            rows.append([name, "FAIL", detail])
            failures.append(f"{name}: {detail}")
            continue
        try:
            record = baseline if quick else module.run_benchmark()
            module._check_gates(record, baseline)
        except AssertionError as exc:
            rows.append([name, "FAIL", str(exc)])
            failures.append(f"{name}: {exc}")
        else:
            rows.append([name, "ok",
                         "baseline gates hold" if quick
                         else "fresh run within gates"])
    return rows, failures


def _check_table(rows, quick):
    mode = "committed baselines" if quick else "fresh runs"
    return format_table(["Artifact", "Gates", "Detail"], rows,
                        title=f"Perf gates — {mode}")


def test_bench_index():
    index = build_index()
    # The trajectory must not read as empty: the replay and telemetry
    # benches both commit artifacts.
    assert index["num_artifacts"] >= 2
    for entry in index["artifacts"].values():
        assert entry["metrics"], f"{entry['file']} flattened to nothing"
    _write_index(index)
    emit("bench_index", _build_table(index))
    # Round-trip: the committed index re-reads to the built one.
    with open(INDEX_PATH, encoding="utf-8") as f:
        assert json.load(f) == index


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="fold committed BENCH_*.json artifacts into the "
                    "perf-trajectory index")
    parser.add_argument(
        "--check", action="store_true",
        help="re-run every gated bench and exit 1 if any committed "
             "gate is violated")
    parser.add_argument(
        "--quick", action="store_true",
        help="with --check: validate the committed baselines against "
             "their own gates without re-running the benches")
    args = parser.parse_args(argv)

    if args.check:
        rows, failures = check_gates(quick=args.quick)
        print(_check_table(rows, args.quick))
        if failures:
            print(f"\n{len(failures)} gate violation(s):",
                  file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"\nall {len(rows)} gated trajectories hold")
        return 0

    result = build_index()
    path = _write_index(result)
    print(_build_table(result))
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
