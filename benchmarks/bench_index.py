"""Perf-trajectory index: one machine-readable view of BENCH_*.json.

Each perf bench that gates a trajectory persists its committed
artifact as ``benchmarks/BENCH_<name>.json`` (currently the replay
engine and telemetry overhead benches). This script folds every such
artifact into ``benchmarks/BENCH_index.json`` so tooling can read the
whole trajectory from one file — per artifact it records the source
file and the flattened scalar leaves (dotted keys), which is exactly
the set of numbers a trend plot or regression diff would want.

The index is deterministic: artifacts sort by name, keys sort within
each artifact, and no timestamps are stamped (the sim-clock rule —
artifacts change only when a bench reruns and commits new numbers).

Run:  pytest benchmarks/bench_index.py -s
 or:  python benchmarks/bench_index.py
"""

import glob
import json
import os

from conftest import RESULTS_DIR, emit
from repro.utils import format_table

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
INDEX_PATH = os.path.join(BENCH_DIR, "BENCH_index.json")


def _flatten(value, prefix=""):
    """Yield (dotted_key, scalar) leaves of a JSON value, depth-first.

    Lists flatten by index; only scalar leaves (numbers, strings,
    booleans, null) are emitted — the index carries every measured
    number without guessing which ones matter.
    """
    if isinstance(value, dict):
        for key in sorted(value):
            dotted = f"{prefix}.{key}" if prefix else str(key)
            yield from _flatten(value[key], dotted)
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            yield from _flatten(item, f"{prefix}.{i}" if prefix
                                else str(i))
    else:
        yield prefix, value


def build_index():
    """Read every committed BENCH_*.json; return the index record."""
    artifacts = {}
    pattern = os.path.join(BENCH_DIR, "BENCH_*.json")
    for path in sorted(glob.glob(pattern)):
        if os.path.abspath(path) == INDEX_PATH:
            continue
        name = os.path.basename(path)[len("BENCH_"):-len(".json")]
        with open(path, encoding="utf-8") as f:
            record = json.load(f)
        artifacts[name] = {
            "file": os.path.basename(path),
            "metrics": dict(_flatten(record)),
        }
    return {"artifacts": artifacts, "num_artifacts": len(artifacts)}


def _write_index(index):
    with open(INDEX_PATH, "w", encoding="utf-8") as f:
        json.dump(index, f, indent=2, sort_keys=True)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "bench_index.json"), "w",
              encoding="utf-8") as f:
        json.dump(index, f, indent=2, sort_keys=True)
    return INDEX_PATH


def _build_table(index):
    rows = [[name, entry["file"], str(len(entry["metrics"]))]
            for name, entry in sorted(index["artifacts"].items())]
    return format_table(
        ["Artifact", "File", "Scalar metrics"], rows,
        title=f"Perf-trajectory index — "
              f"{index['num_artifacts']} committed artifacts")


def test_bench_index():
    index = build_index()
    # The trajectory must not read as empty: the replay and telemetry
    # benches both commit artifacts.
    assert index["num_artifacts"] >= 2
    for entry in index["artifacts"].values():
        assert entry["metrics"], f"{entry['file']} flattened to nothing"
    _write_index(index)
    emit("bench_index", _build_table(index))
    # Round-trip: the committed index re-reads to the built one.
    with open(INDEX_PATH, encoding="utf-8") as f:
        assert json.load(f) == index


if __name__ == "__main__":
    result = build_index()
    path = _write_index(result)
    print(_build_table(result))
    print(f"\nwrote {path}")
