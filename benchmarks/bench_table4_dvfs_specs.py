"""Table 4 — LDO and ADPLL performance specs.

Regenerates the DVFS component specs and verifies the behavioural models
hit them: LDO response 3.8 ns / 50 mV with 99.2 % peak current efficiency,
ADPLL 2.46 mW at 1 GHz.
"""

import pytest

from conftest import emit
from repro.config import DvfsConfig
from repro.dvfs import AdpllModel, LdoModel, VoltageFrequencyTable
from repro.utils import format_table


def build_table():
    config = DvfsConfig()
    ldo = LdoModel(config)
    adpll = AdpllModel(config)
    table = VoltageFrequencyTable(config)
    rows = [
        ["LDO response time", f"{config.ldo_slew_ns_per_50mv} ns / 50 mV"],
        ["LDO peak current efficiency",
         f"{config.ldo_peak_current_efficiency * 100:.1f} %"],
        ["LDO max load", f"{config.ldo_max_load_ma:.0f} mA"],
        ["LDO full-swing settle (0.5->0.8 V)",
         f"{ldo.transition_time_ns(0.5, 0.8):.1f} ns"],
        ["ADPLL power @ 1 GHz", f"{adpll.power_mw(1.0):.2f} mW"],
        ["ADPLL relock (full swing)",
         f"{adpll.relock_time_ns(1.0, table.frequencies[0]):.1f} ns"],
        ["V/F operating points", f"{len(table)}"],
        ["f_max @ 0.5 V", f"{table.frequencies[0]:.3f} GHz"],
        ["f_max @ 0.8 V", f"{table.frequencies[-1]:.3f} GHz"],
    ]
    return format_table(["Spec", "Value"], rows,
                        title="Table 4 — LDO / ADPLL performance specs")


def test_table4_dvfs_specs(benchmark):
    table = benchmark(build_table)
    emit("table4_dvfs_specs", table)

    config = DvfsConfig()
    ldo = LdoModel(config)
    adpll = AdpllModel(config)
    assert ldo.transition_time_ns(0.5, 0.8) == pytest.approx(22.8)
    assert adpll.power_mw(1.0) == pytest.approx(2.46)
    assert config.ldo_peak_current_efficiency == pytest.approx(0.992)
