"""Fig. 12 — qualitative comparison with prior NLP accelerators.

Regenerates the feature matrix (GOBO, OPTIMUS, A3, SpAtten vs. EdgeBERT)
and checks EdgeBERT's distinguishing feature set.
"""

from conftest import emit
from repro.baselines import RELATED_WORK, feature_matrix
from repro.utils import format_table


def test_fig12_related_work(benchmark):
    headers, rows = benchmark(feature_matrix)
    emit("fig12_related_work",
         format_table(headers, rows,
                      title="Fig. 12 — EdgeBERT vs prior Transformer "
                            "accelerators"))

    edgebert = next(a for a in RELATED_WORK if a.name == "EdgeBERT")
    others = [a for a in RELATED_WORK if a.name != "EdgeBERT"]

    # EdgeBERT is the only design with early exit, KD, finetuning-time
    # attention span, and eNVM-resident embeddings.
    assert edgebert.early_exit and not any(a.early_exit for a in others)
    assert edgebert.knowledge_distillation \
        and not any(a.knowledge_distillation for a in others)
    assert edgebert.envm_embeddings \
        and not any(a.envm_embeddings for a in others)
    assert edgebert.attention_span_when == "finetuning" \
        and all(a.attention_span_when == "inference" for a in others)
    assert edgebert.pruning and edgebert.quantization \
        and edgebert.compressed_sparse_execution
