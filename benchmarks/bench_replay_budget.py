"""Energy-budgeted replay bench: the paper's flagship path at 1M.

EdgeBERT's headline configuration is energy-governed, not unthrottled —
so this bench replays a seeded 1M-request diurnal trace through the
vector core with a *brownout* energy budget: a 300 mW rolling-window
cap below the trace's average offered power, which keeps admission
throttled and a deep backlog live for most of the run. That regime is
exactly where the per-event loop hurts (every dispatch pass re-scans
the backlog, every arrival walks the former), and where the vector
core's budget-recheck heap events and O(1) FIFO fast path pay off.

A 100k-request run under both engines measures the speedup *and*
asserts the reports are bit-identical — the budget path's equivalence
contract (same throttle events, same ledgers) is what makes the
speedup meaningful.

``benchmarks/BENCH_replay_budget.json`` is the committed trajectory
baseline; the bench fails before overwriting it when fresh throughput
regresses more than :data:`REGRESSION_TOLERANCE`.

Gates (fail the bench before any reporting does):

* the 1M-request budgeted replay completes in <= 30 s single-process;
* the vector engine is >= 20x faster than the per-event engine at
  N=100k under the same budget;
* the 100k vector and event reports (and budget stats) are identical;
* fresh 1M throughput is within 20% of the committed baseline.

Run:  pytest benchmarks/bench_replay_budget.py -s
 or:  python benchmarks/bench_replay_budget.py
"""

import gc
import json
import os
import resource
import time

from conftest import RESULTS_DIR, emit
from repro.cluster import ClusterSimulator, generate_diurnal_trace
from repro.serving import synthetic_registry
from repro.utils import format_table

TASKS = ("sst2", "mnli", "qqp", "qnli")
N_SENTENCES = 64
MEAN_INTERARRIVAL_MS = 0.1
POOL = 64
MAX_BATCH = 32
#: Short windows + the brownout cap: admission throttles ~20k times
#: over the 1M replay and the backlog stays thousands of batches deep.
TIMEOUT_MS = 5.0
#: Below the trace's ~395 mW average offered power — a sustained
#: brownout, not a transient one.
BUDGET_MW = 300.0
BUDGET_WINDOW_MS = 100.0
REPLAY_REQUESTS = 1_000_000
SPEEDUP_REQUESTS = 100_000

MAX_REPLAY_SECONDS = 30.0
MIN_SPEEDUP = 20.0
REGRESSION_TOLERANCE = 0.20

BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "BENCH_replay_budget.json")


def _require(condition, message):
    # Explicit check (not assert): the gate must still fire under -O.
    if not condition:
        raise AssertionError(message)


def _simulator(registry, engine):
    return ClusterSimulator(
        registry, num_accelerators=POOL, policy="fifo",
        max_batch_size=MAX_BATCH, batch_timeout_ms=TIMEOUT_MS,
        energy_budget_mw=BUDGET_MW, budget_window_ms=BUDGET_WINDOW_MS,
        engine=engine)


def _peak_rss_mb():
    # ru_maxrss is KB on Linux.
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _timed_replay(registry, trace, engine, repeats=1):
    """Best-of-``repeats`` wall clock with the GC parked outside the
    timed window (both engines get the same treatment)."""
    wall = None
    for _ in range(repeats):
        sim = _simulator(registry, engine)
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            report = sim.run(trace)
            elapsed = time.perf_counter() - started
        finally:
            gc.enable()
        if wall is None or elapsed < wall:
            wall = elapsed
    return report, {
        "engine": report.engine,
        "num_requests": len(trace),
        "wall_seconds": wall,
        "requests_per_second": len(trace) / wall,
        "num_batches": report.num_batches,
        "makespan_ms": report.makespan_ms,
        "throttle_events": report.budget.throttle_events,
        "throttled_ms": report.budget.throttled_ms,
    }


def run_benchmark(seed=0):
    """100k vector-vs-event equivalence + speedup, then the 1M replay."""
    registry = synthetic_registry(TASKS, n=N_SENTENCES, seed=seed)

    small = generate_diurnal_trace(
        SPEEDUP_REQUESTS, seed=seed,
        mean_interarrival_ms=MEAN_INTERARRIVAL_MS)
    vec_report, vector = _timed_replay(registry, small, "vector",
                                       repeats=3)
    event_report, event = _timed_replay(registry, small, "event")
    # The speedup only counts because the replays agree exactly.
    _require(json.dumps(vec_report.summary(), sort_keys=True)
             == json.dumps(event_report.summary(), sort_keys=True),
             "vector and event reports differ under the energy budget")
    _require(json.dumps(vec_report.budget.summary(), sort_keys=True)
             == json.dumps(event_report.budget.summary(),
                           sort_keys=True),
             "vector and event budget ledgers differ")
    del small, vec_report, event_report

    trace = generate_diurnal_trace(
        REPLAY_REQUESTS, seed=seed,
        mean_interarrival_ms=MEAN_INTERARRIVAL_MS)
    _, replay = _timed_replay(registry, trace, "vector", repeats=2)
    replay["peak_rss_mb"] = _peak_rss_mb()

    return {
        "config": {
            "tasks": list(TASKS),
            "num_accelerators": POOL,
            "policy": "fifo",
            "max_batch_size": MAX_BATCH,
            "batch_timeout_ms": TIMEOUT_MS,
            "energy_budget_mw": BUDGET_MW,
            "budget_window_ms": BUDGET_WINDOW_MS,
            "mean_interarrival_ms": MEAN_INTERARRIVAL_MS,
            "seed": seed,
        },
        "replay_1m": replay,
        "speedup_100k": {
            "vector": vector,
            "event": event,
            "speedup": event["wall_seconds"] / vector["wall_seconds"],
            "reports_identical": True,
        },
    }


def _check_gates(record, baseline=None):
    replay = record["replay_1m"]
    _require(replay["wall_seconds"] <= MAX_REPLAY_SECONDS,
             f"1M budgeted replay took {replay['wall_seconds']:.1f}s "
             f"(gate: <= {MAX_REPLAY_SECONDS:.0f}s)")
    speedup = record["speedup_100k"]["speedup"]
    _require(speedup >= MIN_SPEEDUP,
             f"vector engine only {speedup:.1f}x over the event engine "
             f"at N={SPEEDUP_REQUESTS:,} (gate: >= {MIN_SPEEDUP:.0f}x)")
    _require(replay["throttle_events"] > 0,
             "brownout bench ran unthrottled; the budget path was "
             "not exercised")
    if baseline is not None:
        base_rps = baseline["replay_1m"]["requests_per_second"]
        fresh_rps = replay["requests_per_second"]
        floor = base_rps * (1.0 - REGRESSION_TOLERANCE)
        _require(fresh_rps >= floor,
                 f"budgeted replay throughput regressed: "
                 f"{fresh_rps:,.0f} req/s vs baseline "
                 f"{base_rps:,.0f} (floor {floor:,.0f})")


def _load_baseline():
    if not os.path.exists(BASELINE_PATH):
        return None
    with open(BASELINE_PATH, encoding="utf-8") as f:
        return json.load(f)


def _write_result(record):
    with open(BASELINE_PATH, "w", encoding="utf-8") as f:
        json.dump(record, f, indent=2, sort_keys=True)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "replay_budget.json")
    with open(path, "w", encoding="utf-8") as f:
        json.dump(record, f, indent=2, sort_keys=True)
    return BASELINE_PATH


def _build_table(record):
    replay = record["replay_1m"]
    s = record["speedup_100k"]
    rows = [
        ["vector", f"{replay['num_requests']:,}",
         f"{replay['wall_seconds']:.2f}",
         f"{replay['requests_per_second']:,.0f}",
         f"{replay['throttle_events']:,}",
         f"{replay['peak_rss_mb']:.0f}"],
        ["vector", f"{s['vector']['num_requests']:,}",
         f"{s['vector']['wall_seconds']:.2f}",
         f"{s['vector']['requests_per_second']:,.0f}",
         f"{s['vector']['throttle_events']:,}", "-"],
        ["event", f"{s['event']['num_requests']:,}",
         f"{s['event']['wall_seconds']:.2f}",
         f"{s['event']['requests_per_second']:,.0f}",
         f"{s['event']['throttle_events']:,}", "-"],
    ]
    return format_table(
        ["Engine", "Requests", "Wall (s)", "Req/s", "Throttles",
         "Peak RSS (MB)"],
        rows,
        title=f"Budgeted replay — {BUDGET_MW:.0f} mW brownout, "
              f"{POOL} accels, vector/event speedup {s['speedup']:.1f}x")


def test_replay_budget():
    baseline = _load_baseline()
    record = run_benchmark()
    _check_gates(record, baseline)
    _write_result(record)
    emit("replay_budget", _build_table(record))


if __name__ == "__main__":
    baseline = _load_baseline()
    result = run_benchmark()
    _check_gates(result, baseline)
    path = _write_result(result)
    print(_build_table(result))
    print(f"\nwrote {path}")
