"""Cluster scaling bench: throughput and tail queueing vs. pool size.

Plays one saturating synthetic trace (≈1 request/ms, ~3x a single
accelerator's sustained rate) through the discrete-event simulator at
pool sizes 1/2/4/8 under FIFO and affinity routing, and records
simulated throughput, p95 queueing delay and end-to-end SLO violations
per configuration in ``benchmarks/results/cluster_scaling.json``.

Gates (fail the bench before any reporting does):

* throughput scales strictly monotonically from 1 -> 2 -> 4 accelerators
  under affinity routing (the ISSUE-2 acceptance criterion);
* the 4-accelerator affinity cluster beats the single-accelerator FIFO
  baseline on both throughput and SLO violations;
* p95 queueing delay is non-increasing in pool size.

Run:  pytest benchmarks/bench_cluster_scaling.py -s
 or:  python benchmarks/bench_cluster_scaling.py
"""

import json
import os

from conftest import RESULTS_DIR, emit
from repro.cluster import ClusterSimulator
from repro.config import GLUE_TASKS
from repro.serving import synthetic_registry, synthetic_traffic
from repro.utils import format_table

NUM_REQUESTS = 600
N_SENTENCES = 128
MEAN_INTERARRIVAL_MS = 1.0
POOL_SIZES = (1, 2, 4, 8)
POLICIES = ("fifo", "affinity")


def _require(condition, message):
    # Explicit check (not assert): the gate must still fire under -O.
    if not condition:
        raise AssertionError(message)


def run_benchmark(num_requests=NUM_REQUESTS, seed=0):
    """Sweep pool sizes x policies; returns the JSON record."""
    registry = synthetic_registry(GLUE_TASKS, n=N_SENTENCES, seed=seed)
    trace = synthetic_traffic(registry, num_requests, seed=seed,
                              mean_interarrival_ms=MEAN_INTERARRIVAL_MS)
    rows = []
    for policy in POLICIES:
        for pool in POOL_SIZES:
            report = ClusterSimulator(
                registry, num_accelerators=pool, policy=policy).run(trace)
            rows.append({
                "policy": policy,
                "num_accelerators": pool,
                "throughput_rps": report.throughput_rps,
                "mean_queueing_delay_ms": report.mean_queueing_delay_ms,
                "p95_queueing_delay_ms": report.p95_queueing_delay_ms,
                "deadline_violations": report.deadline_violations,
                "task_switches": report.serving.task_switches,
                "makespan_ms": report.makespan_ms,
                "wall_seconds": report.wall_seconds,
            })
    return {
        "num_requests": num_requests,
        "mean_interarrival_ms": MEAN_INTERARRIVAL_MS,
        "pool_sizes": list(POOL_SIZES),
        "rows": rows,
    }


def _rows_for(record, policy):
    return {row["num_accelerators"]: row for row in record["rows"]
            if row["policy"] == policy}


def _check_gates(record):
    affinity = _rows_for(record, "affinity")
    fifo = _rows_for(record, "fifo")
    # Monotone throughput scaling 1 -> 2 -> 4 (acceptance criterion).
    thr = [affinity[p]["throughput_rps"] for p in (1, 2, 4)]
    _require(thr[0] < thr[1] < thr[2],
             f"affinity throughput not monotone 1->2->4: {thr}")
    # 4x affinity beats 1x FIFO on throughput and violations.
    _require(affinity[4]["throughput_rps"] > fifo[1]["throughput_rps"],
             "4x affinity throughput does not beat 1x FIFO")
    _require(affinity[4]["deadline_violations"]
             < fifo[1]["deadline_violations"],
             "4x affinity violations not below 1x FIFO")
    # Tail queueing never grows with the pool.
    for policy, rows in (("affinity", affinity), ("fifo", fifo)):
        p95 = [rows[p]["p95_queueing_delay_ms"] for p in POOL_SIZES]
        _require(all(a >= b - 1e-9 for a, b in zip(p95, p95[1:])),
                 f"{policy} p95 queueing delay grew with pool size: {p95}")


def _write_result(record):
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "cluster_scaling.json")
    with open(path, "w", encoding="utf-8") as f:
        json.dump(record, f, indent=2, sort_keys=True)
    return path


def _build_table(record):
    rows = [
        [row["policy"], str(row["num_accelerators"]),
         f"{row['throughput_rps']:,.0f}",
         f"{row['p95_queueing_delay_ms']:.2f}",
         str(row["deadline_violations"]), str(row["task_switches"])]
        for row in record["rows"]
    ]
    return format_table(
        ["Policy", "Accels", "Thr (req/s)", "p95 qd (ms)", "SLO miss",
         "Swaps"],
        rows,
        title=f"Cluster scaling — {record['num_requests']} requests, "
              f"1/{record['mean_interarrival_ms']:.0f} ms arrivals")


def test_cluster_scaling():
    record = run_benchmark()
    _check_gates(record)
    _write_result(record)
    emit("cluster_scaling", _build_table(record))


if __name__ == "__main__":
    result = run_benchmark()
    _check_gates(result)
    path = _write_result(result)
    print(_build_table(result))
    print(f"\nwrote {path}")
