"""Table 2 — eNVM fault-injection study.

Regenerates: mean/min task accuracy when the (pruned, FP8) word embeddings
are stored in SLC / MLC2 / MLC3 ReRAM, plus the area-density and
read-latency rows. Paper reference: SLC and MLC2 show no degradation over
100 trials; MLC3 degrades on average and catastrophically in the minimum
(QNLI min 53.43); density 0.28/0.08/0.04 mm²/MB; latency 1.21/1.54/2.96 ns.
"""

import numpy as np

from conftest import emit
from repro.config import GLUE_TASKS
from repro.envm import MLC2, MLC3, SLC, EnvmEmbeddingStore, run_fault_trials
from repro.training import evaluate_accuracy
from repro.utils import format_table

CELLS = (SLC, MLC2, MLC3)


def accuracy_with_table(artifact, table, eval_subset):
    """Install a (possibly corrupted) embedding table and measure accuracy."""
    weight = artifact.model.embeddings.word.weight
    original = weight.data
    weight.data = table
    try:
        return evaluate_accuracy(artifact.model, eval_subset)
    finally:
        weight.data = original


def run_study(artifacts, n_trials, eval_size=96):
    results = {}
    for task in GLUE_TASKS:
        artifact = artifacts[task]
        from repro.data import make_task_data

        _, eval_split = make_task_data(
            task, train_size=8, eval_size=eval_size, seed=artifactseed(task),
            max_seq_len=artifact.model_config.max_seq_len)
        table = artifact.model.embeddings.word.weight.data
        for cell in CELLS:
            store = EnvmEmbeddingStore(table, cell)
            stats = run_fault_trials(
                store,
                lambda t: accuracy_with_table(artifact, t, eval_split),
                n_trials=n_trials, seed=7)
            results[(task, cell.name)] = stats
    return results


def artifactseed(task):
    return 1000 + hash(task) % 100


def build_table(results):
    headers = ["Task"]
    for cell in CELLS:
        headers += [f"{cell.name} mean", f"{cell.name} min"]
    rows = []
    for task in GLUE_TASKS:
        row = [task]
        for cell in CELLS:
            stats = results[(task, cell.name)]
            row += [f"{stats['mean_accuracy']:.3f}",
                    f"{stats['min_accuracy']:.3f}"]
        rows.append(row)
    rows.append(["Area (mm2/MB)"]
                + [v for cell in CELLS
                   for v in (f"{cell.area_mm2_per_mb:.2f}", "")])
    rows.append(["Read latency (ns)"]
                + [v for cell in CELLS
                   for v in (f"{cell.read_latency_ns:.2f}", "")])
    return format_table(headers, rows,
                        title="Table 2 — ReRAM embedding storage "
                              "fault-injection study")


def test_table2_envm_faults(benchmark, artifacts, fault_trials):
    results = benchmark.pedantic(run_study, args=(artifacts, fault_trials),
                                 rounds=1, iterations=1)
    emit("table2_envm_faults", build_table(results))

    for task in GLUE_TASKS:
        slc = results[(task, "SLC")]
        mlc2 = results[(task, "MLC2")]
        mlc3 = results[(task, "MLC3")]
        # SLC is fault-free; MLC2 matches it (the paper's key decision
        # point for storing data in MLC2); MLC3 is the risky option whose
        # minimum can dip below MLC2's.
        assert slc["mean_accuracy"] == slc["max_accuracy"]
        assert abs(mlc2["mean_accuracy"] - slc["mean_accuracy"]) < 0.02
        assert mlc2["min_accuracy"] >= mlc3["min_accuracy"] - 1e-9
        assert mlc3["mean_data_faults"] > mlc2["mean_data_faults"]
