"""Fig. 9 — DVFS-driven latency-aware inference.

Regenerates, per task: average supply voltage, clock frequency and
per-sentence energy for Base (12-layer, nominal V/F), conventional EE,
LAI at latency targets 50/75/100 ms, and LAI+AAS+Sparse.

The exit behaviour (which layer each sentence leaves at) comes from the
trained tiny-EdgeBERT artifacts; the hardware is priced at the paper's
ALBERT-base dimensions on the energy-optimal n = 16 accelerator — the
same separation the paper uses (algorithm results feed the accelerator
evaluation).

Paper reference shapes: LAI scales V/F down as the target relaxes until
scaling bottoms out at 0.5 V; energy savings up to ~7x vs Base and ~2.5x
vs EE (SST-2 the largest); AAS+Sparse extend the savings further.
"""

import numpy as np

from conftest import PAPER_ENCODER_SPARSITY, PAPER_SPANS, emit
from repro.config import GLUE_TASKS, HwConfig, ModelConfig
from repro.core import LatencyAwareEngine
from repro.earlyexit import build_lut_for_threshold, calibrate_conventional
from repro.utils import format_table

TARGETS_MS = (50.0, 75.0, 100.0)
ACCURACY_BUDGET_PCT = 1.0


def run_task(artifact):
    """All Fig. 9 bars for one task."""
    config = ModelConfig.albert_base(
        num_labels=artifact.eval_logits.shape[-1])
    logits = artifact.eval_logits
    entropies = artifact.eval_entropies
    labels = artifact.eval_labels

    calibration = calibrate_conventional(logits, entropies, labels,
                                         ACCURACY_BUDGET_PCT)
    threshold = calibration.threshold
    lut = build_lut_for_threshold(artifact.train_entropies, threshold,
                                  logits.shape[-1], use_mlp=True,
                                  mlp_epochs=120)

    plain = LatencyAwareEngine(config, HwConfig(mac_vector_size=16))
    optimized = LatencyAwareEngine(
        config, HwConfig(mac_vector_size=16),
        spans=np.asarray(PAPER_SPANS[artifact.task], dtype=float),
        use_adaptive_span=True, sparse_execution=True,
        weight_density=1.0 - PAPER_ENCODER_SPARSITY[artifact.task])

    bars = {
        "base": plain.simulate_dataset("base", logits, entropies),
        "ee": plain.simulate_dataset("ee", logits, entropies,
                                     entropy_threshold=threshold),
    }
    for target in TARGETS_MS:
        bars[f"lai_T{target:.0f}"] = plain.simulate_dataset(
            "lai", logits, entropies, lut=lut, entropy_threshold=threshold,
            target_ms=target)
        bars[f"lai_opt_T{target:.0f}"] = optimized.simulate_dataset(
            "lai", logits, entropies, lut=lut, entropy_threshold=threshold,
            target_ms=target)
    return bars


def build_table(all_bars):
    headers = ["Task", "Mode", "Avg VDD (V)", "Avg Freq (GHz)",
               "Energy (mJ)", "Avg exit"]
    rows = []
    for task in GLUE_TASKS:
        for mode, report in all_bars[task].items():
            rows.append([task, mode, f"{report.average_vdd:.3f}",
                         f"{report.average_freq_ghz:.3f}",
                         f"{report.average_energy_mj:.3f}",
                         f"{report.average_exit_layer:.2f}"])
    return format_table(headers, rows,
                        title="Fig. 9 — latency-aware inference: supply "
                              "voltage, frequency and per-sentence energy")


def test_fig9_latency_aware(benchmark, artifacts):
    all_bars = benchmark.pedantic(
        lambda: {task: run_task(artifacts[task]) for task in GLUE_TASKS},
        rounds=1, iterations=1)
    emit("fig9_latency_aware", build_table(all_bars))

    for task in GLUE_TASKS:
        bars = all_bars[task]
        base = bars["base"].average_energy_mj
        ee = bars["ee"].average_energy_mj
        lai = bars["lai_T75"].average_energy_mj
        opt = bars["lai_opt_T75"].average_energy_mj

        # Energy ordering of the four bars (the Fig. 9 shape). A task
        # whose 1 % budget calibrates to a ~0 threshold has ee == base.
        assert base >= ee >= lai > opt
        assert base > opt
        # Paper headlines: multiple-x vs Base, better than EE at T=75.
        # (A no-early-exit task is limited to DVFS+AAS+sparse gains here.)
        assert base / opt > 2.5
        assert ee / opt > 1.1
        # DVFS actually scaled down, and relaxing the target never raises
        # voltage or energy.
        assert bars["lai_T50"].average_vdd >= bars["lai_T75"].average_vdd
        assert bars["lai_T75"].average_vdd >= bars["lai_T100"].average_vdd
        assert bars["lai_T50"].average_energy_mj >= \
            bars["lai_T100"].average_energy_mj - 1e-9
        # No deadline violations at any target.
        for target in TARGETS_MS:
            assert bars[f"lai_T{target:.0f}"].target_violations == 0

    # The largest base/optimized ratio across tasks approaches the paper's
    # up-to-7x claim.
    best = max(all_bars[t]["base"].average_energy_mj
               / all_bars[t]["lai_opt_T100"].average_energy_mj
               for t in GLUE_TASKS)
    assert best > 4.5
