"""Shared fixtures for the paper-reproduction benchmarks.

Each bench regenerates one table or figure of the paper and writes its
output (paper-style rows) to ``benchmarks/results/`` while also printing
it, so `pytest benchmarks/ --benchmark-only -s` shows the reproduction
next to the timing numbers.
"""

import os
import sys

import pytest

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")

#: Paper Table 1 learned spans (used by the paper-scale hardware benches).
PAPER_SPANS = {
    "mnli": (20, 0, 0, 0, 0, 0, 36, 81, 0, 0, 0, 10),
    "qqp": (16, 0, 0, 0, 0, 0, 40, 75, 0, 0, 0, 2),
    "sst2": (31, 0, 0, 0, 0, 101, 14, 5, 0, 36, 0, 0),
    "qnli": (39, 0, 0, 0, 0, 105, 22, 19, 0, 51, 0, 0),
}

#: Paper Table 3 encoder sparsity per task.
PAPER_ENCODER_SPARSITY = {"mnli": 0.50, "qqp": 0.80, "sst2": 0.50,
                          "qnli": 0.60}


def emit(name, text):
    """Print a reproduction table and persist it under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, name + ".txt"), "w",
              encoding="utf-8") as f:
        f.write(text + "\n")
    print("\n" + text)


@pytest.fixture(scope="session")
def artifacts():
    """Trained tiny-EdgeBERT models for all four tasks (cached on disk)."""
    from repro.core import load_all_artifacts

    return load_all_artifacts()


@pytest.fixture(scope="session")
def fault_trials():
    """Monte-Carlo trial count for the eNVM bench (env-overridable)."""
    return int(os.environ.get("REPRO_BENCH_FAULT_TRIALS", "8"))
