"""Fig. 7 — LDO dynamic voltage adjustments across sentence inferences.

Regenerates the per-sentence DVFS voltage schedule: wake from 0.5 V
standby, layer 1 at 0.79–0.8 V nominal, drop to the predicted-exit
operating point, return to nominal between sentences, fall back to standby
when idle — with every transition settling within 100 ns (negligible
against the 50 ms latency target).
"""

import numpy as np

from conftest import emit
from repro.config import HwConfig, ModelConfig
from repro.core import LatencyAwareEngine
from repro.dvfs import DvfsController
from repro.utils import format_table

TARGET_MS = 50.0


def build_schedule(artifacts):
    """Fig. 7's scenario: consecutive sentences with predicted exits 8/6/8."""
    config = ModelConfig.albert_base()
    engine = LatencyAwareEngine(config, HwConfig(mac_vector_size=16))
    controller = DvfsController()
    layer_ns = engine._layer_nominal.time_ns
    target_ns = TARGET_MS * 1e6

    plans = []
    for predicted_exit in (8, 6, 8):
        remaining = (predicted_exit - 1) * engine.layer_cycles
        point = controller.plan(remaining, target_ns, layer_ns)
        plans.append({
            "layer1_ns": layer_ns,
            "opt_vdd": point.vdd,
            "rest_ns": remaining / point.freq_ghz,
            "predicted_exit": predicted_exit,
        })
    trace = controller.schedule_trace(plans, target_ns)
    return plans, trace


def test_fig7_ldo_transients(benchmark, artifacts):
    plans, trace = benchmark.pedantic(lambda: build_schedule(artifacts),
                                      rounds=1, iterations=1)
    times, volts = trace.as_arrays()

    controller = DvfsController()
    rows = []
    for i, plan in enumerate(plans, start=1):
        settle = controller.ldo.transition_time_ns(0.8, plan["opt_vdd"])
        exec_ms = (plan["layer1_ns"] + settle + plan["rest_ns"]) * 1e-6
        rows.append([f"sentence {i}", plan["predicted_exit"],
                     f"{plan['opt_vdd']:.3f} V", f"{settle:.1f} ns",
                     f"{exec_ms:.1f} ms"])
    table = format_table(
        ["Phase", "PredExit", "VDD_opt", "LDO settle", "T_execution"],
        rows, title=(f"Fig. 7 — DVFS voltage schedule (T_target="
                     f"{TARGET_MS:.0f} ms); trace spans "
                     f"{times[-1] * 1e-6:.0f} ms, "
                     f"{volts.min():.2f}-{volts.max():.2f} V"))
    emit("fig7_ldo_transients", table)

    # Trace invariants (the Fig. 7 shape).
    assert volts[0] == 0.5 and volts[-1] == 0.5  # standby bookends
    assert volts.max() == 0.8  # nominal for every layer 1
    for plan in plans:
        assert plan["opt_vdd"] < 0.8  # DVFS actually scaled down
        settle = controller.ldo.transition_time_ns(0.8, plan["opt_vdd"])
        assert settle < 100.0  # paper: transitions settle within 100 ns
        exec_ns = plan["layer1_ns"] + settle + plan["rest_ns"]
        assert exec_ns <= TARGET_MS * 1e6 + 1e-6  # deadline met
    # Deeper predicted exits must run at a voltage >= shallower ones.
    assert plans[0]["opt_vdd"] >= plans[1]["opt_vdd"]
