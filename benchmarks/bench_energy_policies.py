"""Energy-policy bench: joules vs SLO across cluster placement policies.

Plays the reference mixed-SLO, mixed-criticality workload (400 requests,
four GLUE tasks, base+lai modes) through the discrete-event simulator on
the reference 4-device heterogeneous pool (mac vector sizes 32/16/16/8)
under FIFO, affinity, EDF and the :class:`~repro.energy.EnergyGovernor`,
recording total cluster energy with its compute/swap/idle/transition
breakdown, SLO violations, preemptions and makespan per policy in
``benchmarks/results/energy_policies.json``.

A second sweep replays the **anonymized bursty reference trace**
(``benchmarks/traces/reference_bursty.jsonl``, loaded through
:func:`repro.cluster.load_trace`): a diurnal-ish sinusoidal rate with
three superimposed bursts, so the policies are also gated on a
measured-shaped — not Poisson — arrival pattern.

Gates (fail the bench before any reporting does):

* the energy-aware governor uses **no more total joules than FIFO** at
  an **equal-or-better SLO violation count** on the reference workload
  (the ISSUE-3 acceptance criterion) *and* on the bursty trace replay;
* every policy's per-accelerator energy breakdowns sum to its cluster
  total within 1e-9 and reconcile with the serving aggregates;
* every policy serves the whole trace.

Run:  pytest benchmarks/bench_energy_policies.py -s
 or:  python benchmarks/bench_energy_policies.py
"""

import json
import os

from conftest import RESULTS_DIR, emit
from repro.cluster import ClusterSimulator, load_trace
from repro.energy.__main__ import reference_pool, reference_workload
from repro.utils import format_table

NUM_REQUESTS = 400
N_SENTENCES = 64
POLICIES = ("fifo", "affinity", "edf", "energy")
BURSTY_TRACE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "traces", "reference_bursty.jsonl")


def _require(condition, message):
    # Explicit check (not assert): the gate must still fire under -O.
    if not condition:
        raise AssertionError(message)


def _sweep_policies(registry, trace, pool, label):
    """Run every policy on one trace with the accounting gates."""
    rows = []
    for policy in POLICIES:
        report = ClusterSimulator(registry, policy=policy,
                                  hw_configs=pool).run(trace)
        energy = report.energy
        _require(report.num_requests == len(trace),
                 f"{policy} failed to serve the whole {label} trace")
        _require(abs(energy.total_mj
                     - sum(d.total_mj for d in energy.devices)) <= 1e-9,
                 f"{policy} per-device energy does not sum to the total")
        energy.reconcile(report.serving, tol=1e-9)
        rows.append({
            "policy": policy,
            "total_energy_mj": energy.total_mj,
            "compute_mj": energy.compute_mj,
            "swap_mj": energy.swap_mj,
            "idle_mj": energy.idle_mj,
            "transition_mj": energy.transition_mj,
            "deadline_violations": report.deadline_violations,
            "task_switches": report.serving.task_switches,
            "preemptions": report.preemptions,
            "makespan_ms": report.makespan_ms,
            "mean_queueing_delay_ms": report.mean_queueing_delay_ms,
            "wall_seconds": report.wall_seconds,
        })
    return rows


def run_benchmark(num_requests=NUM_REQUESTS, seed=0):
    """Sweep the policies on one trace; returns the JSON record."""
    registry, trace = reference_workload(num_requests=num_requests,
                                         n_sentences=N_SENTENCES,
                                         seed=seed)
    pool = reference_pool()
    bursty = load_trace(BURSTY_TRACE)
    return {
        "num_requests": num_requests,
        "pool_mac_vector_sizes": [hw.mac_vector_size for hw in pool],
        "rows": _sweep_policies(registry, trace, pool, "poisson"),
        "bursty_trace": os.path.relpath(BURSTY_TRACE,
                                        os.path.dirname(RESULTS_DIR)),
        "bursty_requests": len(bursty),
        "bursty_rows": _sweep_policies(registry, bursty, pool, "bursty"),
    }


def _row_for(record, policy, key="rows"):
    for row in record[key]:
        if row["policy"] == policy:
            return row
    raise AssertionError(f"no {key} row for policy {policy!r}")


def _check_gates(record):
    for key, label in (("rows", "poisson"), ("bursty_rows", "bursty")):
        fifo = _row_for(record, "fifo", key)
        governor = _row_for(record, "energy", key)
        _require(governor["total_energy_mj"] <= fifo["total_energy_mj"],
                 f"energy policy burns more joules than FIFO ({label}): "
                 f"{governor['total_energy_mj']:.6f} vs "
                 f"{fifo['total_energy_mj']:.6f} mJ")
        _require(governor["deadline_violations"]
                 <= fifo["deadline_violations"],
                 f"energy policy misses more SLOs than FIFO ({label}): "
                 f"{governor['deadline_violations']} vs "
                 f"{fifo['deadline_violations']}")


def _write_result(record):
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "energy_policies.json")
    with open(path, "w", encoding="utf-8") as f:
        json.dump(record, f, indent=2, sort_keys=True)
    return path


def _build_table(record):
    sizes = "/".join(str(n) for n in record["pool_mac_vector_sizes"])
    tables = []
    for key, title in (
            ("rows", f"Energy policies — {record['num_requests']} "
                     f"Poisson requests on a heterogeneous n={sizes} "
                     "pool"),
            ("bursty_rows", f"Energy policies — bursty reference trace "
                            f"({record['bursty_requests']} requests, "
                            f"{record['bursty_trace']})")):
        rows = [
            [row["policy"], f"{row['total_energy_mj']:.4f}",
             f"{row['compute_mj']:.4f}", f"{row['swap_mj']:.4f}",
             f"{row['idle_mj']:.4f}", str(row["deadline_violations"]),
             str(row["task_switches"]), f"{row['makespan_ms']:.0f}"]
            for row in record[key]
        ]
        tables.append(format_table(
            ["Policy", "Total (mJ)", "Compute", "Swap", "Idle",
             "SLO miss", "Swaps", "Makespan (ms)"],
            rows, title=title))
    return "\n\n".join(tables)


def test_energy_policies():
    record = run_benchmark()
    _check_gates(record)
    _write_result(record)
    emit("energy_policies", _build_table(record))


if __name__ == "__main__":
    result = run_benchmark()
    _check_gates(result)
    path = _write_result(result)
    print(_build_table(result))
    print(f"\nwrote {path}")
