"""Fig. 10 — latency/energy/area/power breakdown of the n=16 design.

Regenerates: (a) per-datapath latency and energy fractions, (b) per-block
area and average power at 0.8 V / 1 GHz.

Paper reference: MACs 90.7 % latency / 98.8 % energy; encode+decode
~3.2 % latency each; 1.39 mm² total; 85.9 mW total split 36.9 (PU) /
9.44 (SFU) / 33.6 (SRAM) / 3.48 (ReRAM) / 2.46 (ADPLL).
"""

import pytest

from conftest import emit
from repro.config import HwConfig, ModelConfig
from repro.hw import AcceleratorModel, build_encoder_workload
from repro.utils import format_table

PAPER_AREA = {"pu_datapaths": 0.52, "sfu_datapaths": 0.21,
              "sram_buffers": 0.50, "reram_buffers": 0.15, "adpll": 0.01}
PAPER_POWER = {"pu_datapaths": 36.9, "sfu_datapaths": 9.44,
               "sram_buffers": 33.6, "reram_buffers": 3.48, "adpll": 2.46}


def build_breakdowns():
    accelerator = AcceleratorModel(HwConfig(mac_vector_size=16))
    workload = build_encoder_workload(ModelConfig.albert_base(), 128,
                                      use_adaptive_span=False)
    return {
        "latency": accelerator.latency_fractions(workload),
        "energy": accelerator.energy_fractions(workload),
        "area": accelerator.area_breakdown(),
        "power": accelerator.power_breakdown_mw(workload),
    }


def build_table(breakdowns):
    keys = ("macs", "bitmask_decode", "bitmask_encode", "softmax",
            "attn_layernorm", "ffn_layernorm", "residual_add",
            "exit_assessment")
    rows_a = [[key, f"{breakdowns['latency'].get(key, 0) * 100:.2f}%",
               f"{breakdowns['energy'].get(key, 0) * 100:.3f}%"]
              for key in keys]
    part_a = format_table(["Datapath", "Latency", "Energy"], rows_a,
                          title="Fig. 10a — PU/SFU datapath breakdown")

    rows_b = []
    for block in PAPER_AREA:
        rows_b.append([block,
                       f"{breakdowns['area'][block]:.3f}",
                       f"{PAPER_AREA[block]:.2f}",
                       f"{breakdowns['power'][block]:.2f}",
                       f"{PAPER_POWER[block]:.2f}"])
    rows_b.append(["TOTAL",
                   f"{sum(breakdowns['area'].values()):.3f}",
                   f"{sum(PAPER_AREA.values()):.2f}",
                   f"{sum(breakdowns['power'].values()):.2f}",
                   f"{sum(PAPER_POWER.values()):.2f}"])
    part_b = format_table(
        ["Block", "Area mm2 (ours)", "Area (paper)", "Power mW (ours)",
         "Power (paper)"],
        rows_b, title="Fig. 10b — area & power at 0.8 V / 1 GHz (n=16)")
    return part_a + "\n\n" + part_b


def test_fig10_breakdown(benchmark):
    breakdowns = benchmark(build_breakdowns)
    emit("fig10_breakdown", build_table(breakdowns))

    assert breakdowns["latency"]["macs"] == pytest.approx(0.907, abs=0.04)
    assert breakdowns["energy"]["macs"] == pytest.approx(0.988, abs=0.012)
    assert sum(breakdowns["area"].values()) == pytest.approx(1.39, rel=0.05)
    assert sum(breakdowns["power"].values()) == pytest.approx(85.9, rel=0.15)
    for block, value in PAPER_POWER.items():
        assert breakdowns["power"][block] == pytest.approx(value, rel=0.35)
