"""Table 1 — learned spans of every attention head.

Regenerates: per-head spans, average span, and the accuracy delta versus
the span-free teacher for the four GLUE-like tasks. Paper reference: more
than half the heads (7–8 of 12) turn off entirely; average spans 11–19.6;
accuracy deltas within ±0.6 pt.
"""

import numpy as np

from conftest import emit
from repro.config import GLUE_TASKS
from repro.utils import format_table


def build_table(artifacts):
    headers = (["Task"] + [f"h{i}" for i in range(1, 13)]
               + ["Avg.Span", "HeadsOff", "Acc", "TeacherAcc", "AccDiff"])
    rows = []
    for task in GLUE_TASKS:
        artifact = artifacts[task]
        spans = artifact.spans
        rows.append(
            [task]
            + [f"{s:.0f}" for s in spans]
            + [f"{artifact.average_span:.1f}",
               str(int((spans == 0).sum())),
               f"{artifact.baseline_accuracy:.3f}",
               f"{artifact.teacher_accuracy:.3f}",
               f"{artifact.baseline_accuracy - artifact.teacher_accuracy:+.3f}"]
        )
    return format_table(headers, rows,
                        title="Table 1 — learned attention spans per head")


def test_table1_attention_spans(benchmark, artifacts):
    table = benchmark.pedantic(build_table, args=(artifacts,),
                               rounds=1, iterations=1)
    emit("table1_attention_spans", table)

    healthy = 0
    for task in GLUE_TASKS:
        artifact = artifacts[task]
        # Paper shape: a meaningful share of heads is fully off.
        assert int((artifact.spans == 0).sum()) >= 4
        assert artifact.average_span <= artifact.model_config.max_seq_len
        if artifact.baseline_accuracy >= artifact.teacher_accuracy - 0.10:
            healthy += 1
    # Tiny-scale training is fragile for one task/seed combination (see
    # EXPERIMENTS.md); at least three of four tasks must preserve the
    # teacher's accuracy through the full compression pipeline.
    assert healthy >= 3
