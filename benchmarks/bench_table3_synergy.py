"""Table 3 — synergistic optimization results.

Regenerates, per task: embedding/encoder sparsity, average attention span,
and for accuracy budgets of 1/2/5 %: the conventional-EE entropy threshold
and average exit layer versus the latency-aware (predictor-bounded)
threshold, average predicted exit and average actual exit.

Paper reference shapes: uniform 40 % embedding density; LAI needs a
*lower* entropy threshold than conventional EE at the same budget
(conservative prediction); LAI's average actual exit is close to the
conventional EE exit; larger budgets exit earlier.
"""

import numpy as np

from conftest import emit
from repro.config import GLUE_TASKS
from repro.earlyexit import (
    build_lut_for_threshold,
    calibrate_conventional,
    calibrate_latency_aware,
)
from repro.utils import format_table

BUDGETS = (1.0, 2.0, 5.0)


def calibrate_task(artifact):
    logits = artifact.eval_logits
    entropies = artifact.eval_entropies
    labels = artifact.eval_labels
    num_labels = logits.shape[-1]
    rows = []
    for budget in BUDGETS:
        conventional = calibrate_conventional(logits, entropies, labels,
                                              budget)
        lut = build_lut_for_threshold(
            artifact.train_entropies, conventional.threshold, num_labels,
            use_mlp=True, margin=0, mlp_epochs=120)
        lai = calibrate_latency_aware(logits, entropies, labels, budget, lut)
        rows.append((budget, conventional, lai))
    return rows


def build_table(artifacts, calibrations):
    headers = ["Task", "Emb.Spars", "Enc.Spars", "Avg.Span", "Budget%",
               "EE: ET", "EE: AvgExit", "LAI: ET", "LAI: AvgPred",
               "LAI: AvgActual"]
    rows = []
    for task in GLUE_TASKS:
        artifact = artifacts[task]
        for budget, conventional, lai in calibrations[task]:
            rows.append([
                task,
                f"{1.0 - artifact.embedding_density:.2f}",
                f"{artifact.encoder_sparsity:.2f}",
                f"{artifact.average_span:.1f}",
                f"{budget:.0f}",
                f"{conventional.threshold:.2f}",
                f"{conventional.average_exit_layer:.2f}",
                f"{lai.threshold:.2f}",
                f"{lai.average_predicted_layer:.2f}",
                f"{lai.average_exit_layer:.2f}",
            ])
    return format_table(headers, rows,
                        title="Table 3 — synergy of the EdgeBERT "
                              "optimizations (per accuracy budget)")


def test_table3_synergy(benchmark, artifacts):
    calibrations = benchmark.pedantic(
        lambda: {task: calibrate_task(artifacts[task])
                 for task in GLUE_TASKS},
        rounds=1, iterations=1)
    emit("table3_synergy", build_table(artifacts, calibrations))

    for task in GLUE_TASKS:
        artifact = artifacts[task]
        # Uniform 40 % embedding density across tasks (paper Sec. 6.2).
        assert abs(artifact.embedding_density - 0.40) < 0.02
        exits = [c.average_exit_layer for _, c, _ in calibrations[task]]
        # Larger accuracy budgets must not exit later.
        assert exits[0] >= exits[-1] - 1e-9
        for _, conventional, lai in calibrations[task]:
            # Exits happen before the final layer on average...
            assert lai.average_exit_layer <= 12.0
            # ...and the LUT bound keeps actual <= predicted.
            assert lai.average_exit_layer <= lai.average_predicted_layer + 1e-9
